package dist

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// randomGraph builds a connected-ish random graph over n nodes.
func randomGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: rng.Intn(i)})
		if i > 2 && rng.Intn(3) == 0 {
			edges = append(edges, graph.Edge{U: i, V: rng.Intn(i)})
		}
	}
	return graph.FromEdges(n, edges)
}

// TestBFSMatchesUnitWeightDijkstra is the unification's keystone: on a graph
// where every edge weighs 1, the Dijkstra source must produce bit-identical
// rows to the BFS source — same distances, same Unreachable sentinel, same 0
// on the diagonal. Everything above dist (selectors, extraction, budget)
// then behaves identically by construction.
func TestBFSMatchesUnitWeightDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomGraph(t, 60, seed)
		b := NewBFS(g, sssp.Auto)
		d := NewDijkstra(graph.FromUnweighted(g))
		if b.NumNodes() != d.NumNodes() || b.NumEdges() != d.NumEdges() {
			t.Fatalf("seed %d: structural views differ", seed)
		}
		n := g.NumNodes()
		rowB := make([]int32, n)
		rowD := make([]int32, n)
		for u := 0; u < n; u++ {
			if b.Degree(u) != d.Degree(u) {
				t.Fatalf("seed %d: degree(%d) differs", seed, u)
			}
			b.DistancesInto(u, rowB)
			d.DistancesInto(u, rowD)
			if !reflect.DeepEqual(rowB, rowD) {
				t.Fatalf("seed %d: rows from %d differ:\nbfs      %v\ndijkstra %v",
					seed, u, rowB, rowD)
			}
		}
	}
}

// TestSessionsMatchDirectQueries pins that scratch-reusing sessions return
// the same rows as one-shot queries, for both engines.
func TestSessionsMatchDirectQueries(t *testing.T) {
	g := randomGraph(t, 50, 7)
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		sess := NewSession(src)
		n := src.NumNodes()
		direct := make([]int32, n)
		viaSess := make([]int32, n)
		for u := 0; u < n; u += 3 {
			src.DistancesInto(u, direct)
			sess.DistancesInto(u, viaSess)
			if !reflect.DeepEqual(direct, viaSess) {
				t.Fatalf("%T: session row from %d differs", src, u)
			}
		}
	}
}

// TestSweepAndMatrix checks the batched helpers against direct queries,
// including duplicate-source aliasing in DistanceMatrix.
func TestSweepAndMatrix(t *testing.T) {
	g := randomGraph(t, 40, 3)
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		n := src.NumNodes()
		sources := []int{0, 5, 9, 5} // includes a duplicate
		rows := DistanceMatrix(src, sources, 2)
		if len(rows) != len(sources) {
			t.Fatalf("%T: %d rows, want %d", src, len(rows), len(sources))
		}
		want := make([]int32, n)
		for i, u := range sources {
			src.DistancesInto(u, want)
			if !reflect.DeepEqual(rows[i], want) {
				t.Fatalf("%T: matrix row %d (source %d) differs", src, i, u)
			}
		}
		// Sweep visits every source exactly once. The callback runs on
		// worker goroutines, so guard the tally.
		var mu sync.Mutex
		visited := map[int]int{}
		Sweep(src, []int{1, 2, 3}, 2, func(s int, dst []int32) {
			mu.Lock()
			visited[s]++
			mu.Unlock()
		})
		if len(visited) != 3 || visited[1] != 1 || visited[2] != 1 || visited[3] != 1 {
			t.Fatalf("%T: sweep visits = %v", src, visited)
		}
	}
}

// TestPairedSweepFastAndGenericAgree compares the BFS pair's kernel-backed
// paired sweep against the generic session-pool fallback (forced by mixing
// engines), and against a Dijkstra pair on unit weights.
func TestPairedSweepFastAndGenericAgree(t *testing.T) {
	g1 := randomGraph(t, 45, 11)
	// G2 = G1 plus a few edges (insertion-only evolution).
	var extra []graph.Edge
	for u := 0; u < 45; u += 7 {
		extra = append(extra, graph.Edge{U: u, V: (u + 20) % 45})
	}
	edges := append(append([]graph.Edge{}, g1.Edges()...), extra...)
	g2 := graph.FromEdges(45, edges)

	sources := []int{0, 3, 8, 21, 44}
	collect := func(p Pair) map[int][2][]int32 {
		var mu sync.Mutex
		out := map[int][2][]int32{}
		PairedSweep(p, sources, 2, func(src int, d1, d2 []int32) {
			c1 := append([]int32(nil), d1...)
			c2 := append([]int32(nil), d2...)
			mu.Lock()
			out[src] = [2][]int32{c1, c2}
			mu.Unlock()
		})
		return out
	}
	fast := collect(BFSPair(graph.SnapshotPair{G1: g1, G2: g2}, sssp.Auto))
	// Different engines on each side force the generic fallback path.
	generic := collect(Pair{S1: NewBFS(g1, sssp.TopDown), S2: NewBFS(g2, sssp.Auto)})
	dijkstra := collect(DijkstraPair(graph.FromUnweighted(g1), graph.FromUnweighted(g2)))
	if !reflect.DeepEqual(fast, generic) {
		t.Fatal("paired kernel sweep and generic fallback disagree")
	}
	if !reflect.DeepEqual(fast, dijkstra) {
		t.Fatal("BFS pair and unit-weight Dijkstra pair disagree")
	}
}

// evolvedPair builds (g1, g2) with g2 = g1 plus extra random edges.
func evolvedPair(t testing.TB, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	g1 := randomGraph(t, n, seed)
	rng := rand.New(rand.NewSource(seed + 999))
	var extra []graph.Edge
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			extra = append(extra, graph.Edge{U: u, V: v})
		}
	}
	edges := append(append([]graph.Edge{}, g1.Edges()...), extra...)
	return g1, graph.FromEdges(n, edges)
}

// TestIncrementalPairedSweepMatchesFull is the dist-level differential pin:
// for every BFS engine, the incremental sweep (t1 traversal + delta repair)
// must produce exactly the rows of the full paired sweep, and report that it
// actually ran incrementally. A Dijkstra pair lacks the capability and must
// fall back to the full path with identical results on unit weights.
func TestIncrementalPairedSweepMatchesFull(t *testing.T) {
	g1, g2 := evolvedPair(t, 60, 13)
	sources := []int{0, 7, 19, 33, 59}
	collect := func(sweep func(fn func(src int, d1, d2 []int32)) PairedMode) (map[int][2][]int32, PairedMode) {
		var mu sync.Mutex
		out := map[int][2][]int32{}
		mode := sweep(func(src int, d1, d2 []int32) {
			c1 := append([]int32(nil), d1...)
			c2 := append([]int32(nil), d2...)
			mu.Lock()
			out[src] = [2][]int32{c1, c2}
			mu.Unlock()
		})
		return out, mode
	}
	for _, eng := range []sssp.Engine{sssp.Auto, sssp.TopDown, sssp.DirectionOpt,
		sssp.BitParallel64, sssp.BitParallel256, sssp.BitParallel512} {
		// par=2 exercises the intra-traversal parallel kernels end to end;
		// results must be bit-identical to serial (pinned in sssp's fuzz).
		p := BFSPairPar(graph.SnapshotPair{G1: g1, G2: g2}, eng, 2)
		full, _ := collect(func(fn func(int, []int32, []int32)) PairedMode {
			PairedSweep(p, sources, 2, fn)
			return PairedFull
		})
		incr, mode := collect(func(fn func(int, []int32, []int32)) PairedMode {
			return IncrementalPairedSweep(p, sources, 2, fn)
		})
		if mode != PairedIncremental {
			t.Fatalf("engine %v: mode = %v, want incremental", eng, mode)
		}
		if !reflect.DeepEqual(full, incr) {
			t.Fatalf("engine %v: incremental sweep diverges from full", eng)
		}
	}
	// Dijkstra pair: no incremental capability, silent full fallback.
	dp := DijkstraPair(graph.FromUnweighted(g1), graph.FromUnweighted(g2))
	fullD, _ := collect(func(fn func(int, []int32, []int32)) PairedMode {
		PairedSweep(dp, sources, 2, fn)
		return PairedFull
	})
	incrD, mode := collect(func(fn func(int, []int32, []int32)) PairedMode {
		return IncrementalPairedSweep(dp, sources, 2, fn)
	})
	if mode != PairedFull {
		t.Fatalf("Dijkstra pair: mode = %v, want full fallback", mode)
	}
	if !reflect.DeepEqual(fullD, incrD) {
		t.Fatal("Dijkstra fallback sweep diverges from full sweep")
	}
}

// TestPairedEngineSessions pins the session API both engines expose to core:
// DistancesPairInto fills both rows, DeriveInto derives just the t2 row from
// a caller-supplied t1 row, and both agree with direct source queries in
// both modes.
func TestPairedEngineSessions(t *testing.T) {
	g1, g2 := evolvedPair(t, 50, 17)
	p := BFSPair(graph.SnapshotPair{G1: g1, G2: g2}, sssp.Auto)
	n := p.NumNodes()
	want1 := make([]int32, n)
	want2 := make([]int32, n)
	for _, mode := range []PairedMode{PairedFull, PairedIncremental} {
		eng := NewPairedEngine(p, mode)
		if eng.Mode() != mode {
			t.Fatalf("mode = %v, want %v", eng.Mode(), mode)
		}
		sess := eng.NewSession()
		d1 := make([]int32, n)
		d2 := make([]int32, n)
		for u := 0; u < n; u += 5 {
			p.S1.DistancesInto(u, want1)
			p.S2.DistancesInto(u, want2)
			sess.DistancesPairInto(u, d1, d2)
			if !reflect.DeepEqual(d1, want1) || !reflect.DeepEqual(d2, want2) {
				t.Fatalf("mode %v: DistancesPairInto(%d) diverges", mode, u)
			}
			for i := range d2 {
				d2[i] = -7 // poison; DeriveInto must fully overwrite
			}
			sess.DeriveInto(u, want1, d2)
			if !reflect.DeepEqual(d2, want2) {
				t.Fatalf("mode %v: DeriveInto(%d) diverges", mode, u)
			}
		}
	}
	// Requesting incremental on a capability-less pair degrades to full.
	dp := DijkstraPair(graph.FromUnweighted(g1), graph.FromUnweighted(g2))
	if m := NewPairedEngine(dp, PairedIncremental).Mode(); m != PairedFull {
		t.Fatalf("Dijkstra engine mode = %v, want full", m)
	}
	// Mismatched universes can't share a delta either.
	small := randomGraph(t, 10, 1)
	mix := Pair{S1: NewBFS(g1, sssp.Auto), S2: NewBFS(small, sssp.Auto)}
	if m := NewPairedEngine(mix, PairedIncremental).Mode(); m != PairedFull {
		t.Fatalf("mismatched-universe engine mode = %v, want full", m)
	}
}

// TestParsePairedMode covers the CLI flag parser and String round-trip.
func TestParsePairedMode(t *testing.T) {
	for in, want := range map[string]PairedMode{"": PairedFull, "full": PairedFull, "incremental": PairedIncremental} {
		got, err := ParsePairedMode(in)
		if err != nil || got != want {
			t.Fatalf("ParsePairedMode(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParsePairedMode("bogus"); err == nil {
		t.Fatal("bogus mode should fail")
	}
}

// TestSweepEdgeCases covers the generic fallback corners only the batched
// BFS path used to exercise: empty source sets, more workers than sources,
// and a single-node graph — on Sweep, PairedSweep, and the incremental
// sweep, for both the kernel-backed and session-pool paths.
func TestSweepEdgeCases(t *testing.T) {
	single := graph.FromEdges(1, nil)
	g := randomGraph(t, 12, 5)
	srcs := func(g *graph.Graph) []Source {
		return []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))}
	}
	for _, s := range srcs(g) {
		// Empty sources: no callbacks, no hang.
		calls := 0
		Sweep(s, nil, 4, func(int, []int32) { calls++ })
		if calls != 0 {
			t.Fatalf("%T: empty sweep made %d calls", s, calls)
		}
		// More workers than sources.
		var mu sync.Mutex
		got := map[int]int{}
		Sweep(s, []int{1, 2}, 16, func(u int, _ []int32) {
			mu.Lock()
			got[u]++
			mu.Unlock()
		})
		if len(got) != 2 || got[1] != 1 || got[2] != 1 {
			t.Fatalf("%T: over-workered sweep visits = %v", s, got)
		}
	}
	for _, s := range srcs(single) {
		visited := 0
		Sweep(s, []int{0}, 3, func(u int, d []int32) {
			visited++
			if u != 0 || len(d) != 1 || d[0] != 0 {
				t.Fatalf("%T: single-node row = %v from %d", s, d, u)
			}
		})
		if visited != 1 {
			t.Fatalf("%T: single-node sweep visits = %d", s, visited)
		}
	}
	pairs := []Pair{
		BFSPair(graph.SnapshotPair{G1: g, G2: g}, sssp.Auto),
		{S1: NewBFS(g, sssp.TopDown), S2: NewBFS(g, sssp.Auto)}, // generic fallback
		DijkstraPair(graph.FromUnweighted(g), graph.FromUnweighted(g)),
	}
	for _, p := range pairs {
		calls := 0
		PairedSweep(p, nil, 4, func(int, []int32, []int32) { calls++ })
		IncrementalPairedSweep(p, nil, 4, func(int, []int32, []int32) { calls++ })
		if calls != 0 {
			t.Fatalf("empty paired sweeps made %d calls", calls)
		}
		var mu sync.Mutex
		seen := map[int]int{}
		PairedSweep(p, []int{3, 4}, 32, func(u int, _, _ []int32) {
			mu.Lock()
			seen[u]++
			mu.Unlock()
		})
		IncrementalPairedSweep(p, []int{3, 4}, 32, func(u int, _, _ []int32) {
			mu.Lock()
			seen[u] += 10
			mu.Unlock()
		})
		if len(seen) != 2 || seen[3] != 11 || seen[4] != 11 {
			t.Fatalf("over-workered paired sweeps visits = %v", seen)
		}
	}
	sp := Pair{S1: NewBFS(single, sssp.Auto), S2: NewBFS(single, sssp.Auto)}
	visits := 0
	IncrementalPairedSweep(sp, []int{0}, 2, func(u int, d1, d2 []int32) {
		visits++
		if d1[0] != 0 || d2[0] != 0 {
			t.Fatalf("single-node paired rows = %v, %v", d1, d2)
		}
	})
	if visits != 1 {
		t.Fatalf("single-node incremental sweep visits = %d", visits)
	}
}

// TestStructuralHelpers covers the shared component/density/degree helpers.
func TestStructuralHelpers(t *testing.T) {
	// Three components: a triangle {0,1,2}, an edge {3,4}, and the isolated
	// node 5 (a singleton component).
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}})
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		comp, count := LargestComponent(src)
		sort.Ints(comp)
		if count != 3 || !reflect.DeepEqual(comp, []int{0, 1, 2}) {
			t.Fatalf("%T: largest component = %v (count %d)", src, comp, count)
		}
		if MaxDegree(src) != 2 {
			t.Fatalf("%T: max degree = %d", src, MaxDegree(src))
		}
		if Density(src) <= 0 {
			t.Fatalf("%T: density = %v", src, Density(src))
		}
	}
}

// TestPairValidate covers the shared pair checks.
func TestPairValidate(t *testing.T) {
	g := randomGraph(t, 10, 1)
	if err := (Pair{}).Validate(); err == nil {
		t.Fatal("nil sources should fail")
	}
	small := randomGraph(t, 5, 1)
	p := Pair{S1: NewBFS(g, sssp.Auto), S2: NewBFS(small, sssp.Auto)}
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched universes should fail")
	}
	ok := Pair{S1: NewBFS(g, sssp.Auto), S2: NewBFS(g, sssp.Auto)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", ok.NumNodes())
	}
}

// TestUnwrappers pins the structural escape hatches both ways.
func TestUnwrappers(t *testing.T) {
	g := randomGraph(t, 8, 2)
	w := graph.FromUnweighted(g)
	if got, ok := UnweightedGraph(NewBFS(g, sssp.Auto)); !ok || got != g {
		t.Fatal("UnweightedGraph failed on a BFS source")
	}
	if _, ok := UnweightedGraph(NewDijkstra(w)); ok {
		t.Fatal("UnweightedGraph should reject a Dijkstra source")
	}
	if got, ok := WeightedGraph(NewDijkstra(w)); !ok || got != w {
		t.Fatal("WeightedGraph failed on a Dijkstra source")
	}
	if _, ok := WeightedGraph(NewBFS(g, sssp.Auto)); ok {
		t.Fatal("WeightedGraph should reject a BFS source")
	}
}
