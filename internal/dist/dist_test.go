package dist

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// randomGraph builds a connected-ish random graph over n nodes.
func randomGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: rng.Intn(i)})
		if i > 2 && rng.Intn(3) == 0 {
			edges = append(edges, graph.Edge{U: i, V: rng.Intn(i)})
		}
	}
	return graph.FromEdges(n, edges)
}

// TestBFSMatchesUnitWeightDijkstra is the unification's keystone: on a graph
// where every edge weighs 1, the Dijkstra source must produce bit-identical
// rows to the BFS source — same distances, same Unreachable sentinel, same 0
// on the diagonal. Everything above dist (selectors, extraction, budget)
// then behaves identically by construction.
func TestBFSMatchesUnitWeightDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomGraph(t, 60, seed)
		b := NewBFS(g, sssp.Auto)
		d := NewDijkstra(graph.FromUnweighted(g))
		if b.NumNodes() != d.NumNodes() || b.NumEdges() != d.NumEdges() {
			t.Fatalf("seed %d: structural views differ", seed)
		}
		n := g.NumNodes()
		rowB := make([]int32, n)
		rowD := make([]int32, n)
		for u := 0; u < n; u++ {
			if b.Degree(u) != d.Degree(u) {
				t.Fatalf("seed %d: degree(%d) differs", seed, u)
			}
			b.DistancesInto(u, rowB)
			d.DistancesInto(u, rowD)
			if !reflect.DeepEqual(rowB, rowD) {
				t.Fatalf("seed %d: rows from %d differ:\nbfs      %v\ndijkstra %v",
					seed, u, rowB, rowD)
			}
		}
	}
}

// TestSessionsMatchDirectQueries pins that scratch-reusing sessions return
// the same rows as one-shot queries, for both engines.
func TestSessionsMatchDirectQueries(t *testing.T) {
	g := randomGraph(t, 50, 7)
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		sess := NewSession(src)
		n := src.NumNodes()
		direct := make([]int32, n)
		viaSess := make([]int32, n)
		for u := 0; u < n; u += 3 {
			src.DistancesInto(u, direct)
			sess.DistancesInto(u, viaSess)
			if !reflect.DeepEqual(direct, viaSess) {
				t.Fatalf("%T: session row from %d differs", src, u)
			}
		}
	}
}

// TestSweepAndMatrix checks the batched helpers against direct queries,
// including duplicate-source aliasing in DistanceMatrix.
func TestSweepAndMatrix(t *testing.T) {
	g := randomGraph(t, 40, 3)
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		n := src.NumNodes()
		sources := []int{0, 5, 9, 5} // includes a duplicate
		rows := DistanceMatrix(src, sources, 2)
		if len(rows) != len(sources) {
			t.Fatalf("%T: %d rows, want %d", src, len(rows), len(sources))
		}
		want := make([]int32, n)
		for i, u := range sources {
			src.DistancesInto(u, want)
			if !reflect.DeepEqual(rows[i], want) {
				t.Fatalf("%T: matrix row %d (source %d) differs", src, i, u)
			}
		}
		// Sweep visits every source exactly once. The callback runs on
		// worker goroutines, so guard the tally.
		var mu sync.Mutex
		visited := map[int]int{}
		Sweep(src, []int{1, 2, 3}, 2, func(s int, dst []int32) {
			mu.Lock()
			visited[s]++
			mu.Unlock()
		})
		if len(visited) != 3 || visited[1] != 1 || visited[2] != 1 || visited[3] != 1 {
			t.Fatalf("%T: sweep visits = %v", src, visited)
		}
	}
}

// TestPairedSweepFastAndGenericAgree compares the BFS pair's kernel-backed
// paired sweep against the generic session-pool fallback (forced by mixing
// engines), and against a Dijkstra pair on unit weights.
func TestPairedSweepFastAndGenericAgree(t *testing.T) {
	g1 := randomGraph(t, 45, 11)
	// G2 = G1 plus a few edges (insertion-only evolution).
	var extra []graph.Edge
	for u := 0; u < 45; u += 7 {
		extra = append(extra, graph.Edge{U: u, V: (u + 20) % 45})
	}
	edges := append(append([]graph.Edge{}, g1.Edges()...), extra...)
	g2 := graph.FromEdges(45, edges)

	sources := []int{0, 3, 8, 21, 44}
	collect := func(p Pair) map[int][2][]int32 {
		var mu sync.Mutex
		out := map[int][2][]int32{}
		PairedSweep(p, sources, 2, func(src int, d1, d2 []int32) {
			c1 := append([]int32(nil), d1...)
			c2 := append([]int32(nil), d2...)
			mu.Lock()
			out[src] = [2][]int32{c1, c2}
			mu.Unlock()
		})
		return out
	}
	fast := collect(BFSPair(graph.SnapshotPair{G1: g1, G2: g2}, sssp.Auto))
	// Different engines on each side force the generic fallback path.
	generic := collect(Pair{S1: NewBFS(g1, sssp.TopDown), S2: NewBFS(g2, sssp.Auto)})
	dijkstra := collect(DijkstraPair(graph.FromUnweighted(g1), graph.FromUnweighted(g2)))
	if !reflect.DeepEqual(fast, generic) {
		t.Fatal("paired kernel sweep and generic fallback disagree")
	}
	if !reflect.DeepEqual(fast, dijkstra) {
		t.Fatal("BFS pair and unit-weight Dijkstra pair disagree")
	}
}

// TestStructuralHelpers covers the shared component/density/degree helpers.
func TestStructuralHelpers(t *testing.T) {
	// Three components: a triangle {0,1,2}, an edge {3,4}, and the isolated
	// node 5 (a singleton component).
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}})
	for _, src := range []Source{NewBFS(g, sssp.Auto), NewDijkstra(graph.FromUnweighted(g))} {
		comp, count := LargestComponent(src)
		sort.Ints(comp)
		if count != 3 || !reflect.DeepEqual(comp, []int{0, 1, 2}) {
			t.Fatalf("%T: largest component = %v (count %d)", src, comp, count)
		}
		if MaxDegree(src) != 2 {
			t.Fatalf("%T: max degree = %d", src, MaxDegree(src))
		}
		if Density(src) <= 0 {
			t.Fatalf("%T: density = %v", src, Density(src))
		}
	}
}

// TestPairValidate covers the shared pair checks.
func TestPairValidate(t *testing.T) {
	g := randomGraph(t, 10, 1)
	if err := (Pair{}).Validate(); err == nil {
		t.Fatal("nil sources should fail")
	}
	small := randomGraph(t, 5, 1)
	p := Pair{S1: NewBFS(g, sssp.Auto), S2: NewBFS(small, sssp.Auto)}
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched universes should fail")
	}
	ok := Pair{S1: NewBFS(g, sssp.Auto), S2: NewBFS(g, sssp.Auto)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", ok.NumNodes())
	}
}

// TestUnwrappers pins the structural escape hatches both ways.
func TestUnwrappers(t *testing.T) {
	g := randomGraph(t, 8, 2)
	w := graph.FromUnweighted(g)
	if got, ok := UnweightedGraph(NewBFS(g, sssp.Auto)); !ok || got != g {
		t.Fatal("UnweightedGraph failed on a BFS source")
	}
	if _, ok := UnweightedGraph(NewDijkstra(w)); ok {
		t.Fatal("UnweightedGraph should reject a Dijkstra source")
	}
	if got, ok := WeightedGraph(NewDijkstra(w)); !ok || got != w {
		t.Fatal("WeightedGraph failed on a Dijkstra source")
	}
	if _, ok := WeightedGraph(NewBFS(g, sssp.Auto)); ok {
		t.Fatal("WeightedGraph should reject a BFS source")
	}
}
