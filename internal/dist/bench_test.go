package dist

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// benchEvolving builds the synthetic DBLP stream scaled to n=50000 — the
// acceptance size for the incremental paired sweep. DBLP is the sparse
// high-diameter generator, the regime the incremental engine targets: a
// full BFS pays many near-empty levels over 50k nodes while the edge delta
// stays small. (On the dense preferential-attachment generators — Facebook,
// Actors — a 20% delta reshapes distances globally and the full traversal
// is within ~2x of the repair; see README "Performance architecture".)
// Built once and shared across all split fractions.
func benchEvolving(b *testing.B) *graph.Evolving {
	b.Helper()
	ev, err := datagen.DBLP(datagen.Config{Seed: 1, Scale: 50000.0 / 18000})
	if err != nil {
		b.Fatalf("datagen: %v", err)
	}
	return ev
}

// BenchmarkPairedSweep compares the full paired sweep (re-traverse G_t2 per
// source) against the incremental one (derive the t2 row by repairing the
// t1 row with the snapshot edge delta) at 60/70/80% split fractions.
//
// The secondleg rows isolate what the incremental engine replaces: one full
// scalar BFS on G_t2 versus one copy+repair per source, over the same 64
// sources. This is the acceptance comparison — the repair touches only the
// region the delta improves, so its cost tracks the delta size, not V+E.
//
// The sweep rows measure the end-to-end batched drivers (PairedSweep vs
// IncrementalPairedSweep). Note the full driver hands both legs to the
// MS-BFS bit-parallel kernel, which amortizes ~(V+2E)/64 per source at this
// batch size — so at large source counts the full batch sweep remains
// competitive even when the per-source second leg is far cheaper
// incrementally; see README "Performance architecture".
func BenchmarkPairedSweep(b *testing.B) {
	ev := benchEvolving(b)
	n := ev.NumNodes()
	const srcCount = 64
	for _, frac := range []float64{0.6, 0.7, 0.8} {
		sp, err := ev.Pair(frac, 1.0)
		if err != nil {
			b.Fatalf("pair: %v", err)
		}
		p := BFSPair(sp, sssp.Auto)
		pct := int(frac * 100)

		// Sources are spread over the nodes that exist at t1, matching the
		// pipeline: a candidate isolated at t1 has no finite d_t1, so its
		// delta is zero by definition and no selector emits it. (A source
		// born after t1 would also be the incremental engine's worst case —
		// its t1 row is all-unreachable and the repair rebuilds everything.)
		present := 0
		for u := 0; u < n; u++ {
			if sp.G1.Degree(u) > 0 {
				present++
			}
		}
		sources := make([]int, srcCount)
		for i := range sources {
			sources[i] = (i * (present / srcCount)) % present
		}

		// Precompute the t1 rows once: both secondleg variants start from
		// an already-produced d1, so only the second leg is on the clock.
		d1s := make([][]int32, srcCount)
		s1 := NewSession(p.S1)
		for i, src := range sources {
			d1s[i] = make([]int32, n)
			s1.DistancesInto(src, d1s[i])
		}

		b.Run(fmt.Sprintf("secondleg/full/split=%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			sess2 := NewSession(p.S2)
			d2 := make([]int32, n)
			for i := 0; i < b.N; i++ {
				for _, src := range sources {
					sess2.DistancesInto(src, d2)
				}
			}
		})
		b.Run(fmt.Sprintf("secondleg/incremental/split=%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			ps := NewPairedEngine(p, PairedIncremental).NewSession()
			d2 := make([]int32, n)
			for i := 0; i < b.N; i++ {
				for j := range sources {
					ps.DeriveInto(sources[j], d1s[j], d2)
				}
			}
		})

		b.Run(fmt.Sprintf("sweep/full/split=%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PairedSweep(p, sources, 1, func(int, []int32, []int32) {})
			}
		})
		b.Run(fmt.Sprintf("sweep/incremental/split=%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IncrementalPairedSweep(p, sources, 1, func(int, []int32, []int32) {})
			}
		})
	}
}
