package dist

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Batching observability: how many unique sources each flushed sweep carried
// (the cross-request amortization win — BENCH_sssp.json shows 3.3x per-source
// at batch 64), and how many single-source requests were answered from a
// sweep they shared with at least one other request.
var (
	sourcesPerSweep   = obs.NewHistogram("dist.sources_per_sweep")
	coalescedRequests = obs.NewCounter("dist.coalesced_requests")
)

// DefaultBatchWindow is how long a Batcher holds the first request of a batch
// before sweeping, waiting for concurrent requests to coalesce. Two
// milliseconds is far below typical sweep cost on serve-sized graphs and far
// above goroutine scheduling jitter, so concurrent queries reliably share
// lanes without a human-visible latency tax.
const DefaultBatchWindow = 2 * time.Millisecond

// BatcherOptions tunes a Batcher. The zero value gives the serve defaults.
type BatcherOptions struct {
	// Window is how long the first request of a batch waits for company
	// before the sweep runs (default DefaultBatchWindow). <= 0 keeps the
	// default; use Immediate to disable the wait entirely.
	Window time.Duration
	// Immediate disables the coalescing wait: every enqueue flushes at once.
	// Correctness-neutral (results are identical either way); it exists for
	// tests and for callers that know requests never overlap.
	Immediate bool
	// MaxBatch caps unique sources per sweep (default 64, one BitParallel64
	// lane block). A batch that fills flushes immediately, without waiting
	// for the window.
	MaxBatch int
	// Workers is the worker count handed to the underlying sweep driver
	// (0 = process default).
	Workers int
}

// Batcher wraps a Source with cross-request sweep coalescing: single-source
// distance requests arriving within a short window are merged into one
// multi-source sweep on the underlying source (shared 64-lane bit-parallel
// passes when it is BFS-backed), and each caller gets its own copy of its
// row. Rows are bit-identical to unbatched calls — batching changes machine
// work, never results — and each request still costs its caller one budget
// unit (callers charge their own meters; sharing a sweep never shares a
// charge).
//
// Batcher itself implements Source and is safe for concurrent use; its
// DistancesInto blocks until the batched sweep delivers the row.
type Batcher struct {
	src     Source
	window  time.Duration
	max     int
	workers int

	mu      sync.Mutex // guards pending
	pending *swBatch
}

// swBatch is one in-flight coalescing window: the unique sources collected so
// far and the requests waiting on each.
type swBatch struct {
	mu    sync.Mutex // guards per-request delivered/canceled, and row copies
	order []int      // unique sources, arrival order
	reqs  map[int][]*batchReq
	timer *time.Timer
}

// batchReq is one caller waiting for one source's row. delivered and canceled
// are guarded by the owning batch's mu: a canceled request's dst is never
// written, a delivered request's dst is never written again, so a waiter that
// observed either under the lock can safely reuse dst.
type batchReq struct {
	dst       []int32
	done      chan struct{}
	delivered bool
	canceled  bool
}

// NewBatcher wraps src with cross-request batching.
func NewBatcher(src Source, opts BatcherOptions) *Batcher {
	if opts.Window <= 0 {
		opts.Window = DefaultBatchWindow
	}
	if opts.Immediate {
		opts.Window = 0
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	return &Batcher{src: src, window: opts.Window, max: opts.MaxBatch, workers: opts.Workers}
}

// Unwrap returns the underlying source, so structural consumers
// (UnweightedGraph, selectors) see through the batching layer.
func (b *Batcher) Unwrap() Source { return b.src }

// NumNodes returns the node-universe size.
func (b *Batcher) NumNodes() int { return b.src.NumNodes() }

// NumEdges returns the undirected edge count.
func (b *Batcher) NumEdges() int { return b.src.NumEdges() }

// Degree returns the neighbor count of u.
func (b *Batcher) Degree(u int) int { return b.src.Degree(u) }

// NeighborIDs returns u's adjacency; aliases internal storage.
func (b *Batcher) NeighborIDs(u int) []int32 { return b.src.NeighborIDs(u) }

// DistancesInto fills dst with the distances from src, waiting for the
// batched sweep that carries it. Costs one budget unit, exactly like the
// unbatched call.
func (b *Batcher) DistancesInto(src int, dst []int32) {
	_ = b.DistancesIntoCtx(context.Background(), src, dst)
}

// DistancesIntoCtx is DistancesInto under a context: if ctx is done before
// the row arrives the request is withdrawn (its lane may still be swept if
// the batch already launched, but dst is never written after return) and
// ctx's error is returned.
func (b *Batcher) DistancesIntoCtx(ctx context.Context, src int, dst []int32) error {
	req, bt, flush := b.enqueue(src, dst)
	if flush != nil {
		flush()
	}
	return b.wait(ctx, bt, req)
}

// enqueue registers a request for src's row. It returns the request, its
// batch, and — when this request filled the batch or the batcher runs in
// immediate mode — the flush thunk the caller must run (outside b.mu, on its
// own goroutine's time; the caller's request completes during that sweep).
func (b *Batcher) enqueue(src int, dst []int32) (*batchReq, *swBatch, func()) {
	req := &batchReq{dst: dst, done: make(chan struct{})}
	b.mu.Lock()
	bt := b.pending
	if bt == nil {
		bt = &swBatch{reqs: make(map[int][]*batchReq)}
		b.pending = bt
		if b.window > 0 {
			cur := bt
			bt.timer = time.AfterFunc(b.window, func() { b.flushIfPending(cur) })
		}
	}
	if _, seen := bt.reqs[src]; !seen {
		bt.order = append(bt.order, src)
	}
	bt.reqs[src] = append(bt.reqs[src], req)
	full := len(bt.order) >= b.max || b.window <= 0
	if full {
		b.pending = nil
	}
	b.mu.Unlock()
	if full {
		if bt.timer != nil {
			bt.timer.Stop()
		}
		return req, bt, func() { b.flush(bt) }
	}
	return req, bt, nil
}

// flushIfPending detaches bt and sweeps it, unless a filling enqueue already
// took it (timer-vs-full race: whoever detaches under b.mu owns the flush).
func (b *Batcher) flushIfPending(bt *swBatch) {
	b.mu.Lock()
	//convlint:nondet ownership arbitration, not a result path: identity of the detached batch decides which goroutine sweeps it; rows are identical either way
	if b.pending != bt {
		b.mu.Unlock()
		return
	}
	b.pending = nil
	b.mu.Unlock()
	b.flush(bt)
}

// flush sweeps a detached batch's unique sources in one pass over the
// underlying source and fans each row out to its waiters. The sweep runs
// under context.Background(): it serves every waiter in the batch, so no
// single request's cancellation may abort it (a fully-abandoned batch still
// sweeps once; the window bounds the waste).
func (b *Batcher) flush(bt *swBatch) {
	sourcesPerSweep.Observe(int64(len(bt.order)))
	// A request "coalesced" if it shared its sweep with any other request —
	// including duplicate-source requests, which share a single lane.
	total := 0
	for _, src := range bt.order {
		total += len(bt.reqs[src])
	}
	multi := total > 1
	_ = SweepCtx(context.Background(), b.src, bt.order, b.workers, func(src int, dist []int32) {
		bt.mu.Lock()
		for _, req := range bt.reqs[src] {
			if !req.canceled {
				copy(req.dst, dist)
				req.delivered = true
			}
			close(req.done)
		}
		bt.mu.Unlock()
		if multi {
			coalescedRequests.Add(int64(len(bt.reqs[src])))
		}
	})
}

// wait blocks until req's row is delivered or ctx is done, whichever first.
func (b *Batcher) wait(ctx context.Context, bt *swBatch, req *batchReq) error {
	select {
	case <-req.done:
		return nil
	case <-ctx.Done():
		bt.mu.Lock()
		delivered := req.delivered
		if !delivered {
			req.canceled = true
		}
		bt.mu.Unlock()
		if delivered {
			// The row landed while we raced ctx; it is complete and valid.
			return nil
		}
		return ctx.Err()
	}
}

// SweepCtx implements the sweeper capability: all sources enqueue into the
// current window at once (coalescing with any concurrent requests), then fn
// is invoked sequentially as rows are awaited. A multi-source query through a
// Batcher therefore batches with itself even when no other request overlaps.
func (b *Batcher) SweepCtx(ctx context.Context, sources []int, workers int, fn func(src int, dst []int32)) error {
	n := b.src.NumNodes()
	type pending struct {
		req *batchReq
		bt  *swBatch
	}
	reqs := make([]pending, len(sources))
	for i, src := range sources {
		req, bt, flush := b.enqueue(src, make([]int32, n))
		reqs[i] = pending{req, bt}
		if flush != nil {
			flush()
		}
	}
	var err error
	for i, p := range reqs {
		if err != nil {
			// Withdraw the rest so no abandoned dst is ever written.
			p.bt.mu.Lock()
			if !p.req.delivered {
				p.req.canceled = true
			}
			p.bt.mu.Unlock()
			continue
		}
		if werr := b.wait(ctx, p.bt, p.req); werr != nil {
			err = werr
			continue
		}
		fn(sources[i], p.req.dst)
	}
	return err
}

// newIncrementalPairedEngine delegates the incremental-paired capability to
// the wrapped sources: the dynsssp repair path derives t2 rows from t1 rows
// in-worker, so there is no second traversal to batch — routing it through
// the underlying BFS pair directly keeps results identical and skips a
// pointless coalescing wait.
func (b *Batcher) newIncrementalPairedEngine(other Source) (PairedEngine, bool) {
	if u, ok := other.(interface{ Unwrap() Source }); ok {
		other = u.Unwrap()
	}
	if ip, ok := b.src.(incrementalPairable); ok {
		return ip.newIncrementalPairedEngine(other)
	}
	return nil, false
}
