package dist

import "repro/internal/sssp"

// PrunedPairSession is the Δ-threshold capability of paired sessions: the
// bounded variants stop second-snapshot traversal once the threshold
// returned by bound proves the remaining nodes cannot produce a top-k pair
// (see sssp.PrunedSecondBFS for the soundness argument). The cost model is
// untouched — a bounded row is charged exactly like a full one (2 units for
// the pair, 1 for a derive); the savings show up only in kernel metrics and
// wall time.
//
// A bounded call returning true produced a d2 row that is only valid for
// delta extraction against the accompanying d1: abandoned nodes hold d2 =
// d1 (delta 0), not their true distance. Such rows must never be cached or
// served as distance rows.
type PrunedPairSession interface {
	PairedSession
	// DistancesPairBoundedInto is DistancesPairInto with a Δ-threshold on
	// the second row. Costs 2 budget units. Returns true if the t2
	// traversal was cut short.
	DistancesPairBoundedInto(src int, d1, d2 []int32, bound func() int32) bool
	// DeriveBoundedInto is DeriveInto with a Δ-threshold. Costs 1 budget
	// unit. Returns true if the t2 work was cut short.
	DeriveBoundedInto(src int, d1, d2 []int32, bound func() int32) bool
}

// AsPruned adapts any PairedSession to the pruned capability: sessions that
// implement it are returned as-is; everything else (Dijkstra-backed pairs,
// future engines) gets a full-computation fallback whose bounded methods
// ignore the threshold and never cut. Extraction can therefore call the
// bounded entry points unconditionally.
func AsPruned(ps PairedSession) PrunedPairSession {
	if p, ok := ps.(PrunedPairSession); ok {
		return p
	}
	return prunedFallback{ps}
}

// prunedFallback satisfies PrunedPairSession by computing full rows.
type prunedFallback struct {
	PairedSession
}

func (f prunedFallback) DistancesPairBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	f.DistancesPairInto(src, d1, d2)
	return false
}

func (f prunedFallback) DeriveBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	f.DeriveInto(src, d1, d2)
	return false
}

// The full engine's session implements the capability whenever the second
// snapshot unwraps to an unweighted graph (including through the serve
// layer's Batcher): the t1 row still runs through the session — batched,
// engine-selected — while the bounded t2 traversal runs the dedicated
// kernel directly on the graph. Bypassing the batcher for t2 only changes
// machine work, never charges (the caller's meter was charged up front).

func (s *fullPairedSession) DistancesPairBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	s.s1.DistancesInto(src, d1)
	return s.DeriveBoundedInto(src, d1, d2, bound)
}

func (s *fullPairedSession) DeriveBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	if s.g2 == nil {
		s.s2.DistancesInto(src, d2)
		return false
	}
	if s.pruned == nil {
		s.pruned = &sssp.PrunedScratch{}
	}
	return sssp.PrunedSecondBFS(s.g2, src, d1, d2, bound, s.pruned)
}

// The incremental engine's bounded variants run the same decrease-only
// repair wave with a between-level threshold cut.

func (s *incrPairedSession) DistancesPairBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	sssp.ParallelBFSWith(s.e.g1, src, d1, s.e.engine, s.e.par, s.scratch)
	return s.DeriveBoundedInto(src, d1, d2, bound)
}

func (s *incrPairedSession) DeriveBoundedInto(src int, d1, d2 []int32, bound func() int32) bool {
	copy(d2, d1)
	_, cut := s.repair.ApplyAllBounded(s.e.g2, s.e.delta.Edges, d2, d1, bound)
	return cut
}
