package dist

import (
	"repro/internal/graph"
	"repro/internal/sssp"
)

// Dijkstra is the weighted distance source: shortest travel times on a
// graph.Weighted via sssp's lazy-deletion heap Dijkstra. Distances are
// int32 weight sums, directly comparable to BFS hop counts in the shared
// pipeline (both use Unreachable for disconnected pairs).
type Dijkstra struct {
	g *graph.Weighted
}

// NewDijkstra wraps g as a weighted distance source.
func NewDijkstra(g *graph.Weighted) *Dijkstra { return &Dijkstra{g: g} }

// DijkstraPair wraps a weighted snapshot pair as a dist.Pair. The caller
// validates domination (weighted.SnapshotPair.Validate).
func DijkstraPair(g1, g2 *graph.Weighted) Pair {
	return Pair{S1: NewDijkstra(g1), S2: NewDijkstra(g2)}
}

// NumNodes returns the node-universe size.
func (s *Dijkstra) NumNodes() int { return s.g.NumNodes() }

// NumEdges returns the undirected edge count.
func (s *Dijkstra) NumEdges() int { return s.g.NumEdges() }

// Degree returns the neighbor count of u.
func (s *Dijkstra) Degree(u int) int { return s.g.Degree(u) }

// NeighborIDs returns u's adjacency without weights; aliases internal
// storage.
func (s *Dijkstra) NeighborIDs(u int) []int32 { return s.g.NeighborIDs(u) }

// Graph returns the underlying weighted graph.
func (s *Dijkstra) Graph() *graph.Weighted { return s.g }

// DistancesInto runs one Dijkstra from src with a fresh scratch.
func (s *Dijkstra) DistancesInto(src int, dst []int32) {
	sssp.DijkstraWith(s.g, src, dst, nil)
}

// NewSession returns a handle owning a private DijkstraScratch, so repeated
// queries reuse the settled bitmap and heap storage.
func (s *Dijkstra) NewSession() Session {
	return &dijkstraSession{src: s, scratch: sssp.NewDijkstraScratch(s.g.NumNodes())}
}

// dijkstraSession reuses one scratch across queries from a single goroutine.
type dijkstraSession struct {
	src     *Dijkstra
	scratch *sssp.DijkstraScratch
}

func (s *dijkstraSession) DistancesInto(src int, dst []int32) {
	sssp.DijkstraWith(s.src.g, src, dst, s.scratch)
}

// WeightedGraph unwraps a Source to its underlying *graph.Weighted when it
// is Dijkstra-backed.
func WeightedGraph(s Source) (*graph.Weighted, bool) {
	if d, ok := s.(*Dijkstra); ok {
		return d.g, true
	}
	return nil, false
}
