package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/weighted"
)

// WeightedTable exercises the weighted-graph variant on a synthetic road
// network (ring of cities + regional roads; the after-snapshot upgrades
// segments and adds motorways): per selector, the coverage of the exact
// weighted top pairs at δ = Δmax-2 under the suite budget.
func (s *Suite) WeightedTable() (*AblationResult, error) {
	pair, err := weightedRoadPair(s.Config.Seed, 150+int(800*s.Config.scale()))
	if err != nil {
		return nil, err
	}
	gt, err := weighted.Compute(pair, topk.Options{Workers: s.Config.Workers})
	if err != nil {
		return nil, err
	}
	delta := gt.MaxDelta - 2
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	res := &AblationResult{
		Title: fmt.Sprintf("Weighted variant — road network, %d cities, Δmax=%d, k=%d, m=%d",
			pair.G1.NumNodes(), gt.MaxDelta, len(truth), s.Config.m()),
		Columns: []string{"Selector", "coverage %", "SSSPs"},
	}
	for _, sel := range []string{
		weighted.SelDegree, weighted.SelDegDiff, weighted.SelDegRel,
		weighted.SelMaxMin, weighted.SelMaxAvg,
		weighted.SelSumDiff, weighted.SelMaxDiff, weighted.SelMMSD,
	} {
		run, err := weighted.TopK(pair, weighted.Options{
			Selector: sel, M: s.Config.m(), L: s.Config.l(),
			MinDelta: delta, Seed: s.Config.Seed, Workers: s.Config.Workers,
		})
		if err != nil {
			return nil, err
		}
		cov := topk.Coverage(truth, topk.NodeSet(run.Candidates))
		res.Rows = append(res.Rows, []string{sel, pct(cov), fmt.Sprint(run.Budget.Total())})
	}
	return res, nil
}

// weightedRoadPair builds the deterministic weighted evaluation network.
func weightedRoadPair(seed int64, n int) (weighted.SnapshotPair, error) {
	rng := rand.New(rand.NewSource(seed))
	var before []graph.WeightedEdge
	for i := 0; i < n; i++ {
		before = append(before, graph.WeightedEdge{U: i, V: (i + 1) % n, Weight: 4 + rng.Int31n(5)})
	}
	for i := 0; i < n/2; i++ {
		before = append(before, graph.WeightedEdge{
			U: rng.Intn(n), V: rng.Intn(n), Weight: 8 + rng.Int31n(8),
		})
	}
	after := append([]graph.WeightedEdge{}, before...)
	for i := 0; i < n/10; i++ { // segment upgrades
		j := rng.Intn(len(after))
		if after[j].Weight > 2 {
			after[j].Weight = 1 + after[j].Weight/3
		}
	}
	for i := 0; i < 4; i++ { // new motorways
		u := rng.Intn(n)
		after = append(after, graph.WeightedEdge{U: u, V: (u + n/3) % n, Weight: 2})
	}
	g1, err := graph.NewWeighted(n, before)
	if err != nil {
		return weighted.SnapshotPair{}, err
	}
	g2, err := graph.NewWeighted(n, after)
	if err != nil {
		return weighted.SnapshotPair{}, err
	}
	pair := weighted.SnapshotPair{G1: g1, G2: g2}
	return pair, pair.Validate()
}
