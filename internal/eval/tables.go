package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/incidence"
	"repro/internal/obs"
	"repro/internal/topk"
)

// --- Table 1: SSSP budget allocation per approach ---

// Table1Row is the measured budget split of one selector.
type Table1Row struct {
	Approach     string
	CandidateGen int
	TopK         int
	Total        int
	Formula      string // the paper's analytic allocation
}

// Table1Result verifies the paper's Table 1 on a live run: for each
// approach, the SSSPs actually spent per phase.
type Table1Result struct {
	Dataset string
	M, L    int
	Rows    []Table1Row
}

// Table1 runs every approach end to end on the named dataset and reports
// the per-phase SSSP spending next to the paper's analytic formula.
func (s *Suite) Table1(name string) (*Table1Result, error) {
	pair, ok := s.testPairs[name]
	if !ok {
		return nil, fmt.Errorf("eval: dataset %q not in suite", name)
	}
	m, l := s.Config.m(), s.Config.l()
	res := &Table1Result{Dataset: name, M: m, L: l}
	formulas := map[string]string{
		"Degree": "0 | 2m", "DegDiff": "0 | 2m", "DegRel": "0 | 2m",
		"MaxMin": "m | m", "MaxAvg": "m | m",
		"SumDiff": "2l | 2m-2l", "MaxDiff": "2l | 2m-2l",
		"MMSD": "2l | 2m-2l", "MMMD": "2l | 2m-2l",
		"MASD": "2l | 2m-2l", "MAMD": "2l | 2m-2l",
	}
	for _, selName := range candidates.PaperOrder {
		sel, err := candidates.ByName(selName)
		if err != nil {
			return nil, err
		}
		span := s.Config.Trace.StartSpan("table1-row", obs.Str("approach", selName))
		run, err := core.TopK(pair, core.Options{
			Selector: sel, M: m, L: l, K: 10,
			Seed: s.Config.Seed, Workers: s.Config.Workers,
			Trace: s.Config.Trace,
		})
		span.End()
		if err != nil {
			return nil, fmt.Errorf("eval: Table 1 run %s: %w", selName, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Approach:     selName,
			CandidateGen: run.Budget.CandidateGen,
			TopK:         run.Budget.TopK,
			Total:        run.Budget.Total(),
			Formula:      formulas[selName],
		})
	}
	return res, nil
}

func (r *Table1Result) String() string {
	t := newTable(
		fmt.Sprintf("Table 1 — SSSP allocation (dataset=%s, m=%d, l=%d; measured vs paper formula)", r.Dataset, r.M, r.L),
		"Approach", "CandidateGen", "TopK", "Total", "PaperFormula")
	for _, row := range r.Rows {
		t.addRow(row.Approach, fmt.Sprint(row.CandidateGen), fmt.Sprint(row.TopK),
			fmt.Sprint(row.Total), row.Formula)
	}
	return t.String()
}

// --- Table 2: dataset characteristics ---

// Table2Result holds one characteristics row per dataset.
type Table2Result struct {
	Rows []dataset.Characteristics
}

// Table2 computes the dataset-characteristics table over the test pairs.
func (s *Suite) Table2() (*Table2Result, error) {
	res := &Table2Result{}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ds.Characteristics(s.testPairs[ds.Name], gt))
	}
	return res, nil
}

func (r *Table2Result) String() string {
	t := newTable("Table 2 — Dataset characteristics (G_t1 = 80% of edges, G_t2 = full)",
		"Dataset", "Nodes1", "Nodes2", "Edges1", "Edges2", "Diam1", "Diam2", "MaxΔ", "NotConn")
	for _, c := range r.Rows {
		t.addRow(c.Name,
			fmt.Sprint(c.Nodes1), fmt.Sprint(c.Nodes2),
			fmt.Sprint(c.Edges1), fmt.Sprint(c.Edges2),
			fmt.Sprint(c.Diameter1), fmt.Sprint(c.Diameter2),
			fmt.Sprint(c.MaxDelta), fmt.Sprint(c.NotConnected))
	}
	return t.String()
}

// --- Table 3: G^p_k characteristics and greedy cover sizes ---

// Table3Row describes G^p_k at one threshold.
type Table3Row struct {
	Dataset   string
	Delta     int32
	K         int // number of pairs
	Endpoints int
	MaxCover  int // greedy cover size
}

// Table3Result holds the G^p_k rows for every dataset and δ.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 builds G^p_k for δ ∈ {Δmax, Δmax-1, Δmax-2} per dataset and
// reports pair counts, distinct endpoints, and greedy-cover size.
func (s *Suite) Table3() (*Table3Result, error) {
	res := &Table3Result{}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		for _, delta := range Deltas(gt) {
			pairs := gt.PairsAtLeast(delta)
			pg := topk.NewPairsGraph(pairs)
			cov, err := s.GreedyCover(ds.Name, delta)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Table3Row{
				Dataset:   ds.Name,
				Delta:     delta,
				K:         len(pairs),
				Endpoints: pg.NumEndpoints(),
				MaxCover:  len(cov),
			})
		}
	}
	return res, nil
}

func (r *Table3Result) String() string {
	t := newTable("Table 3 — G^p_k characteristics and greedy vertex cover",
		"Dataset", "δ", "Pairs(k)", "Endpoints", "MaxCover")
	for _, row := range r.Rows {
		t.addRow(row.Dataset, fmt.Sprint(row.Delta), fmt.Sprint(row.K),
			fmt.Sprint(row.Endpoints), fmt.Sprint(row.MaxCover))
	}
	return t.String()
}

// --- Table 4: algorithm index ---

// Table4 returns the candidate-selection algorithm overview.
func Table4() string {
	t := newTable("Table 4 — Overview of candidate selection algorithms", "Name", "Description")
	names := append(append([]string{}, candidates.PaperOrder...), "IncDeg", "IncBet")
	desc := map[string]string{
		"IncDeg": "Selects the m active nodes with the largest deg_t2(u) - deg_t1(u) [14].",
		"IncBet": "Selects the m active nodes with the largest increase in the total betweenness of their incident edges [14].",
	}
	for _, name := range names {
		d := candidates.Descriptions[name]
		if d == "" {
			d = desc[name]
		}
		t.addRow(name, d)
	}
	return t.String()
}

// --- Table 5: coverage of every selector at fixed m ---

// Table5Cell is the coverage of one selector on one (dataset, δ).
type Table5Cell struct {
	Dataset  string
	Delta    int32
	K        int
	Coverage float64
}

// Table5Result is the full coverage grid at a fixed budget.
type Table5Result struct {
	M         int
	Selectors []string
	Columns   []Table5Cell         // one per (dataset, δ), in order
	Cells     map[string][]float64 // selector -> coverage per column
	Best      map[int]string       // column index -> best selector
}

// Table5 measures the coverage of all single-feature selectors plus the
// budgeted Incidence policies at budget m for the three δ thresholds of
// every dataset.
func (s *Suite) Table5() (*Table5Result, error) {
	m := s.Config.m()
	selectors := make([]candidates.Selector, 0, len(candidates.PaperOrder)+2)
	for _, name := range candidates.PaperOrder {
		sel, err := candidates.ByName(name)
		if err != nil {
			return nil, err
		}
		selectors = append(selectors, sel)
	}
	selectors = append(selectors, incidence.IncDeg(), incidence.IncBet())

	res := &Table5Result{M: m, Cells: map[string][]float64{}, Best: map[int]string{}}
	for _, sel := range selectors {
		res.Selectors = append(res.Selectors, sel.Name())
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		deltas := Deltas(gt)
		firstCol := len(res.Columns)
		for _, delta := range deltas {
			res.Columns = append(res.Columns, Table5Cell{
				Dataset: ds.Name, Delta: delta, K: gt.KForDelta(delta),
			})
		}
		for _, sel := range selectors {
			// Candidate sets do not depend on δ, so select once per dataset
			// and score the one set against all three thresholds.
			cands, err := s.SelectCandidates(ds.Name, sel, m)
			if err != nil {
				return nil, err
			}
			set := topk.NodeSet(cands)
			for i, delta := range deltas {
				col := firstCol + i
				cov := topk.Coverage(gt.PairsAtLeast(delta), set)
				res.Cells[sel.Name()] = append(res.Cells[sel.Name()], cov)
				best, ok := res.Best[col]
				if !ok || cov > res.Cells[best][col] {
					res.Best[col] = sel.Name()
				}
			}
		}
	}
	return res, nil
}

func (r *Table5Result) String() string {
	header := []string{"Algorithm"}
	for _, c := range r.Columns {
		header = append(header, fmt.Sprintf("%s δ=%d (k=%d)", c.Dataset, c.Delta, c.K))
	}
	t := newTable(fmt.Sprintf("Table 5 — Coverage %% of converging pairs found (m=%d)", r.M), header...)
	for _, sel := range r.Selectors {
		row := []string{sel}
		for col, cov := range r.Cells[sel] {
			cell := pct(cov)
			if r.Best[col] == sel {
				cell = "*" + cell
			}
			row = append(row, cell)
		}
		t.addRow(row...)
	}
	return t.String() + "(* = best algorithm in that column)\n"
}

// --- Table 6: unbudgeted Incidence ---

// Table6Row reports the unbudgeted Incidence algorithm on one dataset.
type Table6Row struct {
	Dataset        string
	ActiveSize     int
	ActiveFraction float64 // |A| / present nodes of G_t1
	SSSPCount      int
	BudgetFraction float64 // suite budget m / present nodes
	Coverages      []Table5Cell
}

// Table6Result compares the unbudgeted Incidence coverage and cost with the
// budgeted setting.
type Table6Result struct {
	M    int
	Rows []Table6Row
}

// Table6 runs the original unbudgeted Incidence algorithm on each dataset
// and reports its (near-total) coverage together with the active-set size —
// the paper's point being that |A| is 12-66% of the graph versus a budget of
// under 2.5%.
func (s *Suite) Table6() (*Table6Result, error) {
	res := &Table6Result{M: s.Config.m()}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		pair := s.testPairs[ds.Name]
		full, err := incidence.Full(pair, 1, s.Config.Workers)
		if err != nil {
			return nil, err
		}
		cost := incidence.CostOf(full, pair)
		row := Table6Row{
			Dataset:        ds.Name,
			ActiveSize:     cost.ActiveSize,
			ActiveFraction: cost.ActiveFraction,
			SSSPCount:      cost.SSSPCount,
			BudgetFraction: float64(s.Config.m()) / float64(cost.GraphSize),
		}
		activeSet := topk.NodeSet(full.Active)
		for _, delta := range Deltas(gt) {
			truth := gt.PairsAtLeast(delta)
			row.Coverages = append(row.Coverages, Table5Cell{
				Dataset: ds.Name, Delta: delta, K: len(truth),
				Coverage: topk.Coverage(truth, activeSet),
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *Table6Result) String() string {
	t := newTable(fmt.Sprintf("Table 6 — Unbudgeted Incidence [14] (vs budget m=%d)", r.M),
		"Dataset", "|A|", "|A|/n %", "SSSPs", "budget/n %", "Coverage per δ")
	for _, row := range r.Rows {
		covs := ""
		for i, c := range row.Coverages {
			if i > 0 {
				covs += "  "
			}
			covs += fmt.Sprintf("δ=%d:%s%%", c.Delta, pct(c.Coverage))
		}
		t.addRow(row.Dataset, fmt.Sprint(row.ActiveSize), pct(row.ActiveFraction),
			fmt.Sprint(row.SSSPCount), pct(row.BudgetFraction), covs)
	}
	return t.String()
}

// --- Greedy-cover reference (used by Table 3 and Figure 2) ---

// CoverQuality reports how much of the top-k pairs an ideal budgeted cover
// (greedy max-coverage with m nodes) could reach — the ceiling the selectors
// chase.
func (s *Suite) CoverQuality(name string, delta int32, m int) (float64, error) {
	gt, err := s.TestTruth(name)
	if err != nil {
		return 0, err
	}
	pairs := gt.PairsAtLeast(delta)
	if len(pairs) == 0 {
		return 1, nil
	}
	_, covered := cover.MaxCoverage(pairs, m)
	return float64(covered) / float64(len(pairs)), nil
}

// randFor derives a deterministic RNG for an experiment component.
func (s *Suite) randFor(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Config.Seed*7919 + salt))
}
