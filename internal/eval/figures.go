package eval

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/cover"
	"repro/internal/topk"
	"repro/internal/viz"
)

// DefaultBudgetSweep returns the budget values the figure experiments sweep
// by default: from below the landmark dead zone up to 4x the suite budget.
func (s *Suite) DefaultBudgetSweep() []int {
	l, m := s.Config.l(), s.Config.m()
	sweep := []int{l / 2, l, 3 * l / 2, 2 * l, 3 * l, 4 * l}
	for v := m; v <= 4*m; v += m / 2 {
		sweep = append(sweep, v)
	}
	// Dedupe and sort-insert preserving ascending order.
	seen := map[int]bool{}
	var out []int
	for _, v := range sweep {
		if v > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Series is one curve of a figure: coverage (or another fraction) per
// budget value.
type Series struct {
	Label  string
	Values []float64 // parallel to the figure's budget sweep
}

// FigureResult is a generic per-dataset family of curves over a budget
// sweep.
type FigureResult struct {
	Title   string
	Dataset string
	Delta   int32
	K       int
	Budgets []int
	Series  []Series
}

func (r *FigureResult) String() string {
	header := []string{"m"}
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	t := newTable(fmt.Sprintf("%s — dataset=%s δ=%d k=%d (values in %%)",
		r.Title, r.Dataset, r.Delta, r.K), header...)
	for i, m := range r.Budgets {
		row := []string{fmt.Sprint(m)}
		for _, s := range r.Series {
			row = append(row, pct(s.Values[i]))
		}
		t.addRow(row...)
	}
	return t.String()
}

// Chart renders the figure as terminal sparklines (one row per series).
func (r *FigureResult) Chart() string {
	series := map[string][]float64{}
	var order []string
	for _, s := range r.Series {
		series[s.Label] = s.Values
		order = append(order, s.Label)
	}
	title := fmt.Sprintf("%s — %s δ=%d", r.Title, r.Dataset, r.Delta)
	return viz.Chart(title, r.Budgets, series, order)
}

// figure1Selectors are the landmark-based and hybrid algorithms Figure 1
// compares.
var figure1Selectors = []string{"SumDiff", "MaxDiff", "MMSD", "MMMD", "MASD", "MAMD"}

// Figure1 sweeps the budget for the landmark-based and hybrid algorithms on
// every dataset (δ = Δmax-1, the paper's middle threshold). Pure landmark
// methods show the dead zone below m = l; hybrids do not.
func (s *Suite) Figure1(budgets []int) ([]*FigureResult, error) {
	if len(budgets) == 0 {
		budgets = s.DefaultBudgetSweep()
	}
	var out []*FigureResult
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		delta := middleDelta(gt)
		fig := &FigureResult{
			Title:   "Figure 1 — Coverage vs budget (landmark & hybrid algorithms)",
			Dataset: ds.Name,
			Delta:   delta,
			K:       gt.KForDelta(delta),
			Budgets: budgets,
		}
		for _, selName := range figure1Selectors {
			sel, err := candidates.ByName(selName)
			if err != nil {
				return nil, err
			}
			series := Series{Label: selName}
			for _, m := range budgets {
				cr, err := s.Coverage(ds.Name, sel, m, delta)
				if err != nil {
					return nil, err
				}
				series.Values = append(series.Values, cr.Coverage)
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out, nil
}

// middleDelta picks δ = Δmax-1 when available, else Δmax.
func middleDelta(gt *topk.GroundTruth) int32 {
	ds := Deltas(gt)
	if len(ds) >= 2 {
		return ds[1]
	}
	return ds[0]
}

// Figure2 examines candidate quality on one dataset (the paper uses
// Facebook, δ = Δmax-1): for each landmark/hybrid selector and budget, the
// percentage of its candidates that are (a) endpoints of G^p_k and (b)
// members of the greedy cover.
func (s *Suite) Figure2(name string, budgets []int) (inPairs, inCover *FigureResult, err error) {
	if len(budgets) == 0 {
		budgets = s.DefaultBudgetSweep()
	}
	gt, err := s.TestTruth(name)
	if err != nil {
		return nil, nil, err
	}
	delta := middleDelta(gt)
	pairs := gt.PairsAtLeast(delta)
	pg := topk.NewPairsGraph(pairs)
	endpoints := map[int32]bool{}
	for _, u := range pg.Endpoints() {
		endpoints[u] = true
	}
	greedy, err := s.GreedyCover(name, delta)
	if err != nil {
		return nil, nil, err
	}
	coverSet := map[int32]bool{}
	for _, u := range greedy {
		coverSet[u] = true
	}
	inPairs = &FigureResult{
		Title: "Figure 2a — % of candidates that are G^p_k endpoints", Dataset: name,
		Delta: delta, K: len(pairs), Budgets: budgets,
	}
	inCover = &FigureResult{
		Title: "Figure 2b — % of candidates in the greedy cover", Dataset: name,
		Delta: delta, K: len(pairs), Budgets: budgets,
	}
	for _, selName := range figure1Selectors {
		sel, err := candidates.ByName(selName)
		if err != nil {
			return nil, nil, err
		}
		sp, sc := Series{Label: selName}, Series{Label: selName}
		for _, m := range budgets {
			cr, err := s.Coverage(name, sel, m, delta)
			if err != nil {
				return nil, nil, err
			}
			var hitP, hitC int
			for _, u := range cr.Candidates {
				if endpoints[int32(u)] {
					hitP++
				}
				if coverSet[int32(u)] {
					hitC++
				}
			}
			if len(cr.Candidates) == 0 {
				sp.Values = append(sp.Values, 0)
				sc.Values = append(sc.Values, 0)
			} else {
				sp.Values = append(sp.Values, float64(hitP)/float64(len(cr.Candidates)))
				sc.Values = append(sc.Values, float64(hitC)/float64(len(cr.Candidates)))
			}
		}
		inPairs.Series = append(inPairs.Series, sp)
		inCover.Series = append(inCover.Series, sc)
	}
	return inPairs, inCover, nil
}

// TrainLocalClassifier trains the paper's L-Classifier for one dataset on
// its (60%, 70%) snapshot pair, with the greedy cover of the training pairs
// graph (at the training pair's own δ = Δmax-1) as the positive class.
func (s *Suite) TrainLocalClassifier(name string) (*candidates.Model, error) {
	sample, err := s.trainSample(name)
	if err != nil {
		return nil, err
	}
	return candidates.Train([]candidates.TrainSample{sample}, candidates.TrainOptions{
		L: s.Config.l(), Workers: s.Config.Workers, Seed: s.Config.Seed + 101,
	})
}

// TrainGlobalClassifier trains the paper's G-Classifier on the training
// pairs of every dataset in the suite, with the dataset-level features
// (density, max degree) appended.
func (s *Suite) TrainGlobalClassifier() (*candidates.Model, error) {
	var samples []candidates.TrainSample
	for _, ds := range s.Datasets {
		sample, err := s.trainSample(ds.Name)
		if err != nil {
			return nil, err
		}
		samples = append(samples, sample)
	}
	return candidates.Train(samples, candidates.TrainOptions{
		Global: true, L: s.Config.l(), Workers: s.Config.Workers, Seed: s.Config.Seed + 103,
	})
}

func (s *Suite) trainSample(name string) (candidates.TrainSample, error) {
	gt, err := s.TrainTruth(name)
	if err != nil {
		return candidates.TrainSample{}, err
	}
	delta := middleDelta(gt)
	positives := map[int32]bool{}
	for _, u := range cover.Greedy(gt.PairsAtLeast(delta)) {
		positives[u] = true
	}
	return candidates.TrainSample{Pair: s.trainPairs[name], Positives: positives}, nil
}

// Figure3 compares the local and global classifiers against the best
// single-feature algorithm of each dataset over a budget sweep
// (δ = Δmax-1 on the test pair). The best algorithm is chosen per dataset by
// its coverage at the suite budget, mirroring the paper's per-dataset
// winner.
func (s *Suite) Figure3(budgets []int) ([]*FigureResult, error) {
	if len(budgets) == 0 {
		budgets = s.DefaultBudgetSweep()
	}
	global, err := s.TrainGlobalClassifier()
	if err != nil {
		return nil, err
	}
	var out []*FigureResult
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		delta := middleDelta(gt)

		bestName, err := s.bestSingleFeature(ds.Name, delta)
		if err != nil {
			return nil, err
		}
		best, err := candidates.ByName(bestName)
		if err != nil {
			return nil, err
		}
		localModel, err := s.TrainLocalClassifier(ds.Name)
		if err != nil {
			return nil, err
		}
		selectors := []candidates.Selector{
			best,
			candidates.Classifier("L-Classifier", localModel),
			candidates.Classifier("G-Classifier", global),
		}
		fig := &FigureResult{
			Title:   fmt.Sprintf("Figure 3 — Classifiers vs best algorithm (%s)", bestName),
			Dataset: ds.Name,
			Delta:   delta,
			K:       gt.KForDelta(delta),
			Budgets: budgets,
		}
		for _, sel := range selectors {
			label := sel.Name()
			if label == bestName {
				label = "Best(" + bestName + ")"
			}
			series := Series{Label: label}
			for _, m := range budgets {
				cr, err := s.Coverage(ds.Name, sel, m, delta)
				if err != nil {
					return nil, err
				}
				series.Values = append(series.Values, cr.Coverage)
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out, nil
}

// bestSingleFeature returns the single-feature selector with the highest
// coverage at the suite budget for the given dataset and threshold.
func (s *Suite) bestSingleFeature(name string, delta int32) (string, error) {
	bestName, bestCov := "", -1.0
	for _, selName := range candidates.PaperOrder {
		sel, err := candidates.ByName(selName)
		if err != nil {
			return "", err
		}
		cr, err := s.Coverage(name, sel, s.Config.m(), delta)
		if err != nil {
			return "", err
		}
		if cr.Coverage > bestCov {
			bestName, bestCov = selName, cr.Coverage
		}
	}
	return bestName, nil
}
