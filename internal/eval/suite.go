// Package eval is the experiment harness: it generates the four synthetic
// datasets, computes exact ground truth once per dataset, and regenerates
// every table and figure of the paper's evaluation section (Tables 1-6,
// Figures 1-3) plus the ablations DESIGN.md calls out. Each experiment
// returns a structured result with a String() that prints the same rows or
// series the paper reports.
package eval

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/cover"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topk"
)

// SuiteConfig configures a Suite.
type SuiteConfig struct {
	// Scale is the dataset size relative to the paper (0 means 0.25, which
	// keeps exact all-pairs ground truth laptop-cheap).
	Scale float64
	// Seed drives generation and all randomized selectors.
	Seed int64
	// Workers bounds BFS parallelism; <=0 means GOMAXPROCS.
	Workers int
	// M is the endpoint budget of budgeted experiments (0 means 50, the
	// same ~0.5-2.5% node fraction the paper's m=100 represents at full
	// size).
	M int
	// L is the landmark count (0 means the paper's 10).
	L int
	// Datasets restricts the suite to a subset of datagen.Names (nil = all).
	Datasets []string
	// Trace, when non-nil, records the phases of every budgeted end-to-end
	// run the suite performs (currently the Table 1 rows) as spans —
	// `experiments -exp table1 -trace out.json` captures the paper's budget
	// split as a loadable timeline.
	Trace *obs.Trace
}

func (c SuiteConfig) scale() float64 {
	if c.Scale <= 0 {
		return 0.25
	}
	return c.Scale
}

func (c SuiteConfig) m() int {
	if c.M <= 0 {
		return 50
	}
	return c.M
}

func (c SuiteConfig) l() int {
	if c.L <= 0 {
		return candidates.DefaultLandmarks
	}
	return c.L
}

// Suite holds the generated datasets together with lazily computed, cached
// ground truths for the test and training snapshot pairs.
type Suite struct {
	Config   SuiteConfig
	Datasets []*dataset.Dataset

	mu          sync.Mutex
	testTruth   map[string]*topk.GroundTruth
	trainTruth  map[string]*topk.GroundTruth
	testPairs   map[string]graph.SnapshotPair
	trainPairs  map[string]graph.SnapshotPair
	greedyCover map[string]map[int32][]int32 // dataset -> δ -> cover
}

// NewSuite generates the datasets and prepares the caches. Ground truth is
// not computed until an experiment needs it.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = datagen.Names
	}
	s := &Suite{
		Config:      cfg,
		testTruth:   map[string]*topk.GroundTruth{},
		trainTruth:  map[string]*topk.GroundTruth{},
		testPairs:   map[string]graph.SnapshotPair{},
		trainPairs:  map[string]graph.SnapshotPair{},
		greedyCover: map[string]map[int32][]int32{},
	}
	for _, name := range names {
		ds, err := dataset.Generate(name, datagen.Config{Seed: cfg.Seed, Scale: cfg.scale()})
		if err != nil {
			return nil, err
		}
		s.Datasets = append(s.Datasets, ds)
		s.testPairs[name] = ds.TestPair()
		s.trainPairs[name] = ds.TrainPair()
	}
	return s, nil
}

// Dataset returns the named dataset.
func (s *Suite) Dataset(name string) (*dataset.Dataset, error) {
	for _, ds := range s.Datasets {
		if ds.Name == name {
			return ds, nil
		}
	}
	return nil, fmt.Errorf("eval: dataset %q not in suite", name)
}

// TestPair returns the (80%, 100%) snapshot pair of the named dataset.
func (s *Suite) TestPair(name string) graph.SnapshotPair { return s.testPairs[name] }

// TrainPair returns the (60%, 70%) snapshot pair of the named dataset.
func (s *Suite) TrainPair(name string) graph.SnapshotPair { return s.trainPairs[name] }

// TestTruth returns (computing and caching on first use) the exact ground
// truth of the dataset's test pair.
func (s *Suite) TestTruth(name string) (*topk.GroundTruth, error) {
	return s.truth(name, s.testPairs, s.testTruth)
}

// TrainTruth returns the cached ground truth of the training pair.
func (s *Suite) TrainTruth(name string) (*topk.GroundTruth, error) {
	return s.truth(name, s.trainPairs, s.trainTruth)
}

func (s *Suite) truth(name string, pairs map[string]graph.SnapshotPair, cache map[string]*topk.GroundTruth) (*topk.GroundTruth, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gt, ok := cache[name]; ok {
		return gt, nil
	}
	pair, ok := pairs[name]
	if !ok {
		return nil, fmt.Errorf("eval: dataset %q not in suite", name)
	}
	gt, err := topk.Compute(pair, topk.Options{Workers: s.Config.Workers})
	if err != nil {
		return nil, fmt.Errorf("eval: ground truth for %s: %w", name, err)
	}
	cache[name] = gt
	return gt, nil
}

// Deltas returns the paper's three evaluation thresholds for a dataset:
// δ ∈ {Δmax, Δmax-1, Δmax-2}, clamped at 1.
func Deltas(gt *topk.GroundTruth) []int32 {
	var out []int32
	for i := int32(0); i < 3; i++ {
		d := gt.MaxDelta - i
		if d < 1 {
			break
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		out = []int32{1}
	}
	return out
}

// GreedyCover returns (cached) the greedy vertex cover of the dataset's
// G^p_k at threshold δ on the test pair.
func (s *Suite) GreedyCover(name string, delta int32) ([]int32, error) {
	s.mu.Lock()
	covers := s.greedyCover[name]
	if covers == nil {
		covers = map[int32][]int32{}
		s.greedyCover[name] = covers
	}
	if c, ok := covers[delta]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	gt, err := s.TestTruth(name)
	if err != nil {
		return nil, err
	}
	c := cover.Greedy(gt.PairsAtLeast(delta))
	s.mu.Lock()
	covers[delta] = c
	s.mu.Unlock()
	return c, nil
}

// CoverageResult is one selector's coverage measurement.
type CoverageResult struct {
	Selector   string
	Dataset    string
	Delta      int32
	K          int
	M          int
	Coverage   float64
	Candidates []int
	Budget     budget.Report
	// Err records a selector that could not run at this budget (e.g. the
	// landmark dead zone m <= l); Coverage is then 0.
	Err error
}

// Coverage measures the fraction of the top-k pairs (δ threshold) covered by
// the selector's candidate set at budget m. The selector only generates
// candidates here; coverage is a property of the candidate set, so the
// extraction SSSPs are accounted (they are part of the budget) but not
// executed.
func (s *Suite) Coverage(name string, sel candidates.Selector, m int, delta int32) (CoverageResult, error) {
	gt, err := s.TestTruth(name)
	if err != nil {
		return CoverageResult{}, err
	}
	truth := gt.PairsAtLeast(delta)
	res := CoverageResult{
		Selector: sel.Name(),
		Dataset:  name,
		Delta:    delta,
		K:        len(truth),
		M:        m,
	}
	cands, report, err := s.selectWithBudget(name, sel, m)
	res.Budget = report
	if err != nil {
		res.Err = err
		return res, nil // dead zones and exhaustion are data, not failures
	}
	res.Candidates = cands
	res.Coverage = topk.Coverage(truth, topk.NodeSet(cands))
	return res, nil
}

// SelectCandidates runs a selector at budget m with the suite's settings and
// returns its candidate set. Selector setup errors (e.g. the landmark dead
// zone) yield an empty candidate set, mirroring Coverage's treatment.
func (s *Suite) SelectCandidates(name string, sel candidates.Selector, m int) ([]int, error) {
	if _, ok := s.testPairs[name]; !ok {
		return nil, fmt.Errorf("eval: dataset %q not in suite", name)
	}
	cands, _, err := s.selectWithBudget(name, sel, m)
	if err != nil {
		return nil, nil // dead zone: no candidates
	}
	return cands, nil
}

func (s *Suite) selectWithBudget(name string, sel candidates.Selector, m int) ([]int, budget.Report, error) {
	ctx := &candidates.Context{
		Pair:    s.testPairs[name],
		M:       m,
		L:       s.Config.l(),
		RNG:     rand.New(rand.NewSource(s.Config.Seed + int64(m)*1009)),
		Meter:   budget.NewMeter(m),
		Workers: s.Config.Workers,
	}
	cands, err := sel.Select(ctx)
	return cands, ctx.Meter.Report(), err
}
