package eval

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAblationLandmarkCount(t *testing.T) {
	s := tinySuite(t)
	res, err := s.AblationLandmarkCount([]int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(res.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(res.Rows), len(res.Columns))
	}
	// The temporary L override must be restored.
	if s.Config.L != 5 {
		t.Fatalf("suite L mutated to %d", s.Config.L)
	}
	_ = res.String()
}

func TestAblationCoverStrategy(t *testing.T) {
	s := tinySuite(t)
	res, err := s.AblationCoverStrategy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		pairs := atoi(t, row[1])
		greedy := atoi(t, row[2])
		matching := atoi(t, row[3])
		degOrd := atoi(t, row[4])
		if pairs > 0 && (greedy == 0 || matching == 0 || degOrd == 0) {
			t.Fatalf("empty cover for %v", row)
		}
		// Greedy should not be larger than the 2-approx matching cover.
		if greedy > matching {
			t.Fatalf("greedy %d > matching %d for %s", greedy, matching, row[0])
		}
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAblationLandmarkStrategy(t *testing.T) {
	s := tinySuite(t)
	res, err := s.AblationLandmarkStrategy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if !strings.Contains(res.String(), "maxmin") {
		t.Fatal("missing strategy column")
	}
}

func TestExtensionsTable(t *testing.T) {
	s := tinySuite(t)
	res, err := s.ExtensionsTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 6 {
			t.Fatalf("row = %v", row)
		}
	}
	_ = res.String()
}

func TestStreamingTable(t *testing.T) {
	s := tinySuite(t)
	res, err := s.StreamingTable(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		recompute := atoi(t, row[1])
		incremental := atoi(t, row[2])
		if incremental >= recompute {
			t.Fatalf("incremental %d not cheaper than recompute %d", incremental, recompute)
		}
		// The streaming ranking must agree substantially with the offline
		// one (they compute the same quantity).
		agreement := row[3]
		if agreement == "0.0" {
			t.Fatalf("zero agreement for %s", row[0])
		}
	}
}

func TestOracleTable(t *testing.T) {
	s := tinySuite(t)
	res, err := s.OracleTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		queries := atoi(t, row[3])
		sssps := atoi(t, row[5])
		// The cost argument: the oracle scan does orders of magnitude more
		// work units than the budgeted algorithm's SSSP count.
		if queries < 100*sssps {
			t.Fatalf("%s: queries %d not >> sssps %d", row[0], queries, sssps)
		}
	}
	_ = res.String()
}

func TestOracleAccuracy(t *testing.T) {
	s := tinySuite(t)
	res, err := s.OracleAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExpansionTable(t *testing.T) {
	s := tinySuite(t)
	res, err := s.ExpansionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		incA := atoi(t, row[1])
		expA := atoi(t, row[4])
		if expA < incA {
			t.Fatalf("%s: expansion shrank the active set %d -> %d", row[0], incA, expA)
		}
		if atoi(t, row[5]) < atoi(t, row[2]) {
			t.Fatalf("%s: expansion cheaper than one round", row[0])
		}
	}
}

func TestWeightedTable(t *testing.T) {
	s := tinySuite(t)
	res, err := s.WeightedTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if atoi(t, row[2]) > 2*s.Config.M {
			t.Fatalf("%s overspent: %s SSSPs", row[0], row[2])
		}
	}
}

func TestCSVAndChartOutputs(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Figure1([]int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := figs[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 budgets
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "m,SumDiff") {
		t.Fatalf("csv header = %q", lines[0])
	}
	chart := figs[0].Chart()
	if !strings.Contains(chart, "MMSD") || !strings.Contains(chart, "m=8") {
		t.Fatalf("chart:\n%s", chart)
	}

	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := t5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "algorithm,") {
		t.Fatal("table5 csv header missing")
	}

	st, err := s.StructureTable()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 5 { // header + 4 datasets
		t.Fatalf("structure csv:\n%s", buf.String())
	}
}

func TestTrainPairAccessor(t *testing.T) {
	s := tinySuite(t)
	train := s.TrainPair("Facebook")
	test := s.TestPair("Facebook")
	if train.G2.NumEdges() >= test.G1.NumEdges() {
		t.Fatal("training window should precede the test window")
	}
}

func TestSnapshotSweep(t *testing.T) {
	s := tinySuite(t)
	res, err := s.SnapshotSweep([]float64{0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 datasets x 2 fractions
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Note: Δmax is NOT monotone in the window length — a pair can be
	// disconnected in the earlier snapshot (excluded from that problem
	// instance) yet connected at a large distance later. Only sanity-check
	// the values.
	for i := 0; i+1 < len(res.Rows); i += 2 {
		if res.Rows[i][0] != res.Rows[i+1][0] {
			t.Fatalf("row pairing broken: %v %v", res.Rows[i], res.Rows[i+1])
		}
	}
	for _, row := range res.Rows {
		if atoi(t, row[2]) < 0 || atoi(t, row[3]) < 0 {
			t.Fatalf("negative stats: %v", row)
		}
	}
}
