package eval

import (
	"strings"
	"testing"

	"repro/internal/candidates"
)

// tinySuite builds a fast suite over all four datasets.
func tinySuite(t testing.TB) *Suite {
	t.Helper()
	s, err := NewSuite(SuiteConfig{Scale: 0.04, Seed: 42, Workers: 4, M: 20, L: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteBasics(t *testing.T) {
	s := tinySuite(t)
	if len(s.Datasets) != 4 {
		t.Fatalf("datasets = %d", len(s.Datasets))
	}
	if _, err := s.Dataset("Facebook"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dataset("nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	gt, err := s.TestTruth("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	gt2, err := s.TestTruth("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	if gt != gt2 {
		t.Fatal("ground truth not cached")
	}
	if _, err := s.TestTruth("nope"); err == nil {
		t.Fatal("unknown truth should fail")
	}
	deltas := Deltas(gt)
	if len(deltas) == 0 || deltas[0] != gt.MaxDelta {
		t.Fatalf("deltas = %v for Δmax=%d", deltas, gt.MaxDelta)
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] != deltas[i-1]-1 {
			t.Fatalf("deltas not consecutive: %v", deltas)
		}
	}
}

func TestCoverageMeasurement(t *testing.T) {
	s := tinySuite(t)
	gt, err := s.TestTruth("InternetLinks")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := candidates.ByName("MMSD")
	if err != nil {
		t.Fatal(err)
	}
	cr, err := s.Coverage("InternetLinks", sel, 20, gt.MaxDelta)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Err != nil {
		t.Fatalf("selector error: %v", cr.Err)
	}
	if cr.Coverage < 0 || cr.Coverage > 1 {
		t.Fatalf("coverage = %v", cr.Coverage)
	}
	if cr.Budget.Total() > 2*20 {
		t.Fatalf("coverage run overspent: %v", cr.Budget)
	}
	// The dead zone: m below landmark count yields Err and zero coverage.
	dead, err := s.Coverage("InternetLinks", mustSel(t, "SumDiff"), 3, gt.MaxDelta)
	if err != nil {
		t.Fatal(err)
	}
	if dead.Err == nil || dead.Coverage != 0 {
		t.Fatalf("dead zone: %+v", dead)
	}
}

func mustSel(t testing.TB, name string) candidates.Selector {
	t.Helper()
	sel, err := candidates.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestTable1(t *testing.T) {
	s := tinySuite(t)
	res, err := s.Table1("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(candidates.PaperOrder) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Total > 2*res.M {
			t.Fatalf("%s total %d > 2m", row.Approach, row.Total)
		}
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Fatal("missing title")
	}
	if _, err := s.Table1("nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestTable2(t *testing.T) {
	s := tinySuite(t)
	res, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.String()
	for _, name := range []string{"Actors", "InternetLinks", "Facebook", "DBLP"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in:\n%s", name, out)
		}
	}
}

func TestTable3(t *testing.T) {
	s := tinySuite(t)
	res, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.MaxCover > row.Endpoints {
			t.Fatalf("cover %d > endpoints %d", row.MaxCover, row.Endpoints)
		}
		if row.Endpoints > 2*row.K {
			t.Fatalf("endpoints %d > 2k=%d", row.Endpoints, 2*row.K)
		}
		if row.K > 0 && row.MaxCover == 0 {
			t.Fatalf("pairs with empty cover: %+v", row)
		}
	}
	_ = res.String()
}

func TestTable4(t *testing.T) {
	out := Table4()
	for _, name := range append(append([]string{}, candidates.PaperOrder...), "IncDeg", "IncBet") {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 4 missing %s", name)
		}
	}
}

func TestTable5(t *testing.T) {
	s := tinySuite(t)
	res, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selectors) != len(candidates.PaperOrder)+2 {
		t.Fatalf("selectors = %d", len(res.Selectors))
	}
	if len(res.Columns) == 0 {
		t.Fatal("no columns")
	}
	for sel, covs := range res.Cells {
		if len(covs) != len(res.Columns) {
			t.Fatalf("%s has %d cells for %d columns", sel, len(covs), len(res.Columns))
		}
		for _, c := range covs {
			if c < 0 || c > 1 {
				t.Fatalf("%s coverage %v", sel, c)
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "*") {
		t.Fatal("no best markers")
	}
}

func TestTable6(t *testing.T) {
	s := tinySuite(t)
	res, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ActiveFraction <= 0 || row.ActiveFraction > 1 {
			t.Fatalf("%s active fraction %v", row.Dataset, row.ActiveFraction)
		}
		// The unbudgeted algorithm must dwarf the budget (the paper's point)
		// and achieve high coverage at Δmax.
		if len(row.Coverages) == 0 {
			t.Fatalf("%s has no coverage cells", row.Dataset)
		}
		if row.SSSPCount != 2*row.ActiveSize {
			t.Fatalf("%s SSSP count %d != 2|A|", row.Dataset, row.SSSPCount)
		}
	}
	_ = res.String()
}

func TestFigure1(t *testing.T) {
	s := tinySuite(t)
	budgets := []int{3, 8, 15, 30}
	figs, err := s.Figure1(budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != len(figure1Selectors) {
			t.Fatalf("series = %d", len(fig.Series))
		}
		for _, series := range fig.Series {
			if len(series.Values) != len(budgets) {
				t.Fatalf("values = %d", len(series.Values))
			}
			// Below the landmark count (m=3 < l=5) the pure landmark
			// methods must show the dead zone.
			if series.Label == "SumDiff" || series.Label == "MaxDiff" {
				if series.Values[0] != 0 {
					t.Fatalf("%s at m=3 = %v, want dead zone 0", series.Label, series.Values[0])
				}
			}
		}
		_ = fig.String()
	}
}

func TestFigure2(t *testing.T) {
	s := tinySuite(t)
	inPairs, inCover, err := s.Figure2("Facebook", []int{8, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []*FigureResult{inPairs, inCover} {
		for _, series := range fig.Series {
			for _, v := range series.Values {
				if v < 0 || v > 1 {
					t.Fatalf("%s value %v", series.Label, v)
				}
			}
		}
		_ = fig.String()
	}
	if _, _, err := s.Figure2("nope", nil); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestFigure3(t *testing.T) {
	s := tinySuite(t)
	figs, err := s.Figure3([]int{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 3 {
			t.Fatalf("series = %d, want best + 2 classifiers", len(fig.Series))
		}
		if !strings.HasPrefix(fig.Series[0].Label, "Best(") {
			t.Fatalf("first series = %s", fig.Series[0].Label)
		}
		_ = fig.String()
	}
}

func TestCoverQuality(t *testing.T) {
	s := tinySuite(t)
	gt, err := s.TestTruth("DBLP")
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.CoverQuality("DBLP", gt.MaxDelta, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("unlimited cover quality = %v, want 1", q)
	}
	q1, err := s.CoverQuality("DBLP", gt.MaxDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q1 > q {
		t.Fatal("quality not monotone in budget")
	}
}

func TestDefaultBudgetSweep(t *testing.T) {
	s := tinySuite(t)
	sweep := s.DefaultBudgetSweep()
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("sweep not strictly ascending: %v", sweep)
		}
	}
}
