package eval

import (
	"fmt"
	"strings"
)

// table is a minimal aligned-column text table used by every experiment's
// String() output.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }
