package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stats"
)

// WriteCSV emits the figure as CSV: a budget column followed by one column
// per series, values as fractions in [0, 1].
func (r *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"m"}
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, m := range r.Budgets {
		row := []string{strconv.Itoa(m)}
		for _, s := range r.Series {
			row = append(row, strconv.FormatFloat(s.Values[i], 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the ablation table as CSV.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Table 5 coverage grid as CSV, one row per selector.
func (r *Table5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"algorithm"}
	for _, c := range r.Columns {
		header = append(header, fmt.Sprintf("%s_delta%d", c.Dataset, c.Delta))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, sel := range r.Selectors {
		row := []string{sel}
		for _, cov := range r.Cells[sel] {
			row = append(row, strconv.FormatFloat(cov, 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StructureTable characterizes each dataset's final snapshot with the
// structural statistics that justify the synthetic substitutions
// (DESIGN.md §4): clustering for the social regimes, degree inequality and
// disassortativity for the Internet's hubs, sparsity for DBLP.
func (s *Suite) StructureTable() (*AblationResult, error) {
	res := &AblationResult{
		Title: "Structure — final-snapshot statistics of the synthetic datasets",
		Columns: []string{"Dataset", "mean deg", "max deg", "gini",
			"clustering", "assortativity", "alpha"},
	}
	for _, ds := range s.Datasets {
		g := s.testPairs[ds.Name].G2
		sum := stats.Summarize(g)
		res.Rows = append(res.Rows, []string{
			ds.Name,
			fmt.Sprintf("%.2f", sum.Degrees.Mean),
			fmt.Sprint(sum.Degrees.Max),
			fmt.Sprintf("%.2f", sum.Degrees.Gini),
			fmt.Sprintf("%.3f", sum.Clustering),
			fmt.Sprintf("%.3f", sum.Assortativity),
			fmt.Sprintf("%.2f", sum.PowerLawAlpha),
		})
	}
	return res, nil
}
