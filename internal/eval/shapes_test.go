package eval

import (
	"testing"

	"repro/internal/candidates"
	"repro/internal/incidence"
	"repro/internal/topk"
)

// TestPaperShapes pins the paper's comparative claims as a regression test:
// if a refactor breaks an algorithm, the orderings the paper reports — and
// EXPERIMENTS.md records — fail here. Run on a mid-size suite so the
// orderings are stable, averaged over the δ = Δmax-1 column of each
// dataset.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size suite")
	}
	s, err := NewSuite(SuiteConfig{Scale: 0.08, Seed: 42, Workers: 0, M: 30, L: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Average coverage per selector across datasets at δ = Δmax-1.
	avg := map[string]float64{}
	selNames := append([]string{}, candidates.PaperOrder...)
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		delta := middleDelta(gt)
		truth := gt.PairsAtLeast(delta)
		for _, name := range selNames {
			sel, err := candidates.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cands, err := s.SelectCandidates(ds.Name, sel, s.Config.m())
			if err != nil {
				t.Fatal(err)
			}
			avg[name] += topk.Coverage(truth, topk.NodeSet(cands)) / float64(len(s.Datasets))
		}
	}
	t.Logf("average coverages: %v", avg)

	// Claim 1 (Table 5): Degree is the worst selector.
	for _, name := range selNames {
		if name == "Degree" {
			continue
		}
		if avg["Degree"] > avg[name]+0.10 {
			t.Errorf("Degree (%.2f) should not beat %s (%.2f)", avg["Degree"], name, avg[name])
		}
	}
	// Claim 2: SumDiff beats MaxDiff on average.
	if avg["SumDiff"] <= avg["MaxDiff"] {
		t.Errorf("SumDiff (%.2f) should beat MaxDiff (%.2f)", avg["SumDiff"], avg["MaxDiff"])
	}
	// Claim 3: the SD hybrids beat their MD counterparts.
	if avg["MMSD"] <= avg["MMMD"] {
		t.Errorf("MMSD (%.2f) should beat MMMD (%.2f)", avg["MMSD"], avg["MMMD"])
	}
	if avg["MASD"] <= avg["MAMD"] {
		t.Errorf("MASD (%.2f) should beat MAMD (%.2f)", avg["MASD"], avg["MAMD"])
	}
	// Claim 4: the best hybrid beats every centrality selector decisively.
	bestHybrid := avg["MMSD"]
	if avg["MASD"] > bestHybrid {
		bestHybrid = avg["MASD"]
	}
	for _, name := range []string{"Degree", "DegDiff", "DegRel"} {
		if bestHybrid <= avg[name] {
			t.Errorf("best hybrid (%.2f) should beat %s (%.2f)", bestHybrid, name, avg[name])
		}
	}
	// Claim 5 (Table 6): unbudgeted Incidence has near-total coverage but
	// needs an active set far larger than the budget. Evaluated at
	// δ = Δmax-1 (Δmax alone can be a single pair whose endpoints received
	// no new edge, making the 0-or-1 score brittle).
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		truth := gt.PairsAtLeast(middleDelta(gt))
		full, err := incidence.Full(s.TestPair(ds.Name), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		cov := topk.Coverage(truth, topk.NodeSet(full.Active))
		if cov < 0.80 {
			t.Errorf("%s: unbudgeted Incidence coverage %.2f at δ=Δmax-1", ds.Name, cov)
		}
		if len(full.Active) < 3*s.Config.m() {
			t.Errorf("%s: active set %d not much larger than budget %d",
				ds.Name, len(full.Active), s.Config.m())
		}
	}
	// Claim 6 (Figure 1): pure landmark selectors have the dead zone below
	// m = l; hybrids already produce candidates there.
	deadM := s.Config.l() - 2
	for _, ds := range s.Datasets {
		cands, err := s.SelectCandidates(ds.Name, mustSel(t, "SumDiff"), deadM)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 0 {
			t.Errorf("%s: SumDiff at m<l returned %d candidates", ds.Name, len(cands))
		}
		cands, err = s.SelectCandidates(ds.Name, mustSel(t, "MMSD"), deadM)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Errorf("%s: MMSD at m<l returned no candidates", ds.Name)
		}
	}
}
