package eval

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// PruneTable measures the Δ-threshold pruned extraction against the full
// baseline on the synthetic DBLP stream at n=50000 (the acceptance size,
// independent of the suite's -scale): for each k it runs the identical MMSD
// query with Prune off and on, attributes traversal work to the extraction
// phase by subtracting a standalone selection's work (selection is
// deterministic, so both modes spend exactly the same there), and verifies
// the two results are bit-identical. The Edges× column is the headline:
// full-extraction edges / pruned-extraction edges.
func (s *Suite) PruneTable(ks []int) (*AblationResult, error) {
	if len(ks) == 0 {
		ks = []int{10, 50, 200}
	}
	const (
		m    = 100
		l    = 10
		seed = 1
	)
	ev, err := datagen.DBLP(datagen.Config{Seed: seed, Scale: 50000.0 / 18000})
	if err != nil {
		return nil, fmt.Errorf("eval: prune datagen: %w", err)
	}
	pair, err := ev.Pair(0.8, 1.0)
	if err != nil {
		return nil, fmt.Errorf("eval: prune pair: %w", err)
	}

	// Standalone selection run: the per-query selection work both modes
	// repeat verbatim (same selector, seed, and pair), measured once so the
	// per-mode rows can report extraction-only traversal work.
	selNodes, selEdges, err := selectionWork(pair, m, l, seed, s.Config.Workers)
	if err != nil {
		return nil, err
	}

	res := &AblationResult{
		Title: fmt.Sprintf("Δ-threshold pruned extraction — DBLP n=%d (80%% split), MMSD m=%d l=%d; extraction-phase traversal work (selection's %d edges subtracted)",
			pair.G2.NumNodes(), m, l, selEdges),
		Columns: []string{"k", "Mode", "ExtNodes", "ExtEdges", "Edges×", "Skipped", "Cutoffs", "Wall", "Pairs", "Identical"},
	}
	for _, k := range ks {
		var fullPairs []topk.Pair
		var fullEdges int64
		for _, mode := range []core.PruneMode{core.PruneOff, core.PruneAuto} {
			before := sssp.SnapshotMetrics()
			prunedBefore := sssp.SnapshotPrunedWork()
			//convlint:nondet wall time is observational, not part of results
			start := time.Now()
			r, err := core.TopK(pair, core.Options{
				Selector: candidates.MMSD(), M: m, L: l, K: k,
				Seed: seed, Workers: s.Config.Workers, Prune: mode,
			})
			//convlint:nondet wall time is observational, not part of results
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("eval: prune k=%d mode=%d: %w", k, mode, err)
			}
			d := sssp.SnapshotMetrics().Sub(before).Total()
			cuts := sssp.SnapshotPrunedWork().Sub(prunedBefore)
			extNodes, extEdges := d.Nodes-selNodes, d.Edges-selEdges
			name, ratio, identical := "full", "", ""
			if mode == core.PruneOff {
				fullPairs, fullEdges = r.Pairs, extEdges
			} else {
				name = "pruned"
				if extEdges > 0 {
					ratio = fmt.Sprintf("%.2fx", float64(fullEdges)/float64(extEdges))
				}
				identical = fmt.Sprint(samePairs(fullPairs, r.Pairs))
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(k), name, fmt.Sprint(extNodes), fmt.Sprint(extEdges), ratio,
				fmt.Sprint(r.Pruned.CandidatesSkipped), fmt.Sprint(cuts.Cutoffs),
				durString(wall.Nanoseconds()), fmt.Sprint(len(r.Pairs)), identical,
			})
		}
	}
	return res, nil
}

// samePairs reports whether two result slices are bit-identical.
func samePairs(a, b []topk.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// selectionWork runs the MMSD selection standalone — exactly the call core
// makes — and returns its traversal-work delta.
func selectionWork(pair graph.SnapshotPair, m, l int, seed int64, workers int) (nodes, edges int64, err error) {
	src := dist.BFSPair(pair, sssp.Auto)
	cctx := &candidates.Context{
		Pair: pair, S1: src.S1, S2: src.S2, M: m, L: l,
		RNG:   rand.New(rand.NewSource(seed)),
		Meter: budget.NewMeter(m), Workers: workers, Ctx: context.Background(),
	}
	before := sssp.SnapshotMetrics()
	if _, err := candidates.MMSD().Select(cctx); err != nil {
		return 0, 0, fmt.Errorf("eval: prune selection baseline: %w", err)
	}
	d := sssp.SnapshotMetrics().Sub(before).Total()
	return d.Nodes, d.Edges, nil
}
