package eval

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/cover"
	"repro/internal/embed"
	"repro/internal/landmark"
	"repro/internal/monitor"
	"repro/internal/topk"
)

// AblationResult is a generic label -> value table per dataset.
type AblationResult struct {
	Title   string
	Columns []string
	Rows    [][]string
}

func (r *AblationResult) String() string {
	t := newTable(r.Title, r.Columns...)
	for _, row := range r.Rows {
		t.addRow(row...)
	}
	return t.String()
}

// AblationLandmarkCount varies the landmark-set size for MMSD across all
// datasets (δ = Δmax-1). The paper fixes l = 10 and reports that larger
// values did not help; this ablation makes that claim checkable.
func (s *Suite) AblationLandmarkCount(ls []int) (*AblationResult, error) {
	if len(ls) == 0 {
		ls = []int{5, 10, 25, 50}
	}
	res := &AblationResult{
		Title:   fmt.Sprintf("Ablation — MMSD coverage %% vs landmark count (m=%d)", s.Config.m()),
		Columns: []string{"Dataset"},
	}
	for _, l := range ls {
		res.Columns = append(res.Columns, fmt.Sprintf("l=%d", l))
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		delta := middleDelta(gt)
		truth := gt.PairsAtLeast(delta)
		row := []string{ds.Name}
		for _, l := range ls {
			saved := s.Config.L
			s.Config.L = l
			cands, err := s.SelectCandidates(ds.Name, candidates.MMSD(), s.Config.m())
			s.Config.L = saved
			if err != nil {
				return nil, err
			}
			row = append(row, pct(topk.Coverage(truth, topk.NodeSet(cands))))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationCoverStrategy compares the vertex-cover heuristics that can serve
// as the classifier's positive class: size of the cover each produces on
// the δ = Δmax-1 pairs graph.
func (s *Suite) AblationCoverStrategy() (*AblationResult, error) {
	res := &AblationResult{
		Title:   "Ablation — vertex cover size by strategy (δ = Δmax-1)",
		Columns: []string{"Dataset", "pairs", "greedy", "matching", "degree-ordered"},
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		pairs := gt.PairsAtLeast(middleDelta(gt))
		g := cover.Greedy(pairs)
		m := cover.Matching(pairs)
		d := cover.DegreeOrdered(pairs)
		res.Rows = append(res.Rows, []string{
			ds.Name, fmt.Sprint(len(pairs)),
			fmt.Sprint(len(g)), fmt.Sprint(len(m)), fmt.Sprint(len(d)),
		})
	}
	return res, nil
}

// AblationLandmarkStrategy compares landmark-selection strategies under the
// same SumDiff ranking — the design decision behind the hybrid algorithms.
func (s *Suite) AblationLandmarkStrategy() (*AblationResult, error) {
	strategies := []landmark.Strategy{
		landmark.Random, landmark.MaxMin, landmark.MaxAvg, landmark.HighDegree,
	}
	res := &AblationResult{
		Title:   fmt.Sprintf("Ablation — SumDiff coverage %% by landmark strategy (m=%d, l=%d)", s.Config.m(), s.Config.l()),
		Columns: []string{"Dataset"},
	}
	for _, st := range strategies {
		res.Columns = append(res.Columns, st.String())
	}
	l, m := s.Config.l(), s.Config.m()
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		truth := gt.PairsAtLeast(middleDelta(gt))
		pair := s.testPairs[ds.Name]
		row := []string{ds.Name}
		for _, st := range strategies {
			set, err := landmark.Select(st, pair.G1, l, s.randFor(int64(st)), nil)
			if err != nil {
				return nil, err
			}
			norms, err := landmark.ComputeNorms(set, pair, nil, s.Config.Workers)
			if err != nil {
				return nil, err
			}
			cands := landmark.TopByScore(norms.L1, m-l, nil)
			cands = append(cands, set.Nodes...)
			row = append(row, pct(topk.Coverage(truth, topk.NodeSet(cands))))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ExtensionsTable measures the library's beyond-the-paper selectors —
// the Orion-style embedding selector (the paper's stated future work) and
// the regression-based ranker (its ref-[5] direction) — against MMSD and
// the classifiers, at the suite budget with δ = Δmax-1.
func (s *Suite) ExtensionsTable() (*AblationResult, error) {
	global, err := s.TrainGlobalClassifier()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: fmt.Sprintf("Extensions — coverage %% of future-work selectors (m=%d, δ=Δmax-1)", 4*s.Config.m()),
		Columns: []string{"Dataset", "MMSD", "EmbedSum", "R-Classifier",
			"L-Classifier", "G-Classifier"},
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		truth := gt.PairsAtLeast(middleDelta(gt))
		localModel, err := s.TrainLocalClassifier(ds.Name)
		if err != nil {
			return nil, err
		}
		regModel, err := s.trainRegression(ds.Name)
		if err != nil {
			return nil, err
		}
		row := []string{ds.Name}
		for _, sel := range []candidates.Selector{
			candidates.MMSD(),
			embed.NewSelector(embed.Options{}, 64),
			candidates.Regression("R-Classifier", regModel),
			candidates.Classifier("L-Classifier", localModel),
			candidates.Classifier("G-Classifier", global),
		} {
			cands, err := s.SelectCandidates(ds.Name, sel, 4*s.Config.m())
			if err != nil {
				return nil, err
			}
			row = append(row, pct(topk.Coverage(truth, topk.NodeSet(cands))))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// trainRegression builds the regression model for a dataset's training pair
// with G^p_k-degree targets.
func (s *Suite) trainRegression(name string) (*candidates.RegressionModel, error) {
	gt, err := s.TrainTruth(name)
	if err != nil {
		return nil, err
	}
	targets := candidates.PairDegreeTargets(gt.PairsAtLeast(middleDelta(gt)))
	return candidates.TrainRegression(
		[]candidates.RegressionSample{{Pair: s.trainPairs[name], Targets: targets}},
		candidates.TrainOptions{L: s.Config.l(), Workers: s.Config.Workers, Seed: s.Config.Seed + 107},
	)
}

// StreamingTable compares per-window landmark recomputation against the
// incremental LandmarkTracker: SSSP cost and agreement of the SumDiff
// ranking over the final window.
func (s *Suite) StreamingTable(windows int) (*AblationResult, error) {
	if windows < 2 {
		windows = 4
	}
	l := s.Config.l()
	res := &AblationResult{
		Title:   fmt.Sprintf("Streaming — incremental landmark maintenance vs recompute (%d windows, l=%d)", windows, l),
		Columns: []string{"Dataset", "recompute SSSPs", "incremental SSSPs", "top-20 agreement %"},
	}
	for _, ds := range s.Datasets {
		ev := ds.Ev
		fractions := monitor.EvenWindows(0.6, windows)
		startPrefix := int(fractions[0] * float64(ev.NumEdges()))
		g1 := ev.SnapshotPrefix(startPrefix)
		set, err := landmark.Select(landmark.MaxMin, g1, l, nil, nil)
		if err != nil {
			return nil, err
		}
		tracker, err := monitor.NewLandmarkTracker(ev, set.Nodes, startPrefix)
		if err != nil {
			return nil, err
		}
		// Walk the windows, checkpointing at each boundary; the final
		// window's ranking is compared against offline SumDiff.
		for i := 1; i < len(fractions); i++ {
			if i == len(fractions)-1 {
				tracker.Checkpoint()
			}
			if err := tracker.AdvanceToFraction(fractions[i]); err != nil {
				return nil, err
			}
		}
		streamTop := tracker.Top(20)

		lastPair, err := ev.Pair(fractions[len(fractions)-2], 1.0)
		if err != nil {
			return nil, err
		}
		lastSet := landmark.Set{Strategy: set.Strategy, Nodes: set.Nodes}
		norms, err := landmark.ComputeNorms(lastSet, lastPair, nil, s.Config.Workers)
		if err != nil {
			return nil, err
		}
		offlineTop := landmark.TopByScore(norms.L1, 20, nil)
		inStream := map[int]bool{}
		for _, u := range streamTop {
			inStream[u] = true
		}
		agree := 0
		for _, u := range offlineTop {
			if inStream[u] {
				agree++
			}
		}
		res.Rows = append(res.Rows, []string{
			ds.Name,
			fmt.Sprint(windows * 2 * l),
			fmt.Sprint(l),
			pct(float64(agree) / 20),
		})
	}
	return res, nil
}
