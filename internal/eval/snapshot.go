package eval

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/graph"
	"repro/internal/topk"
)

// SnapshotSweep varies how much evolution separates the snapshots: for each
// first-snapshot fraction f ∈ {0.6, 0.7, 0.8, 0.9} (against the full graph
// as G_t2), it reports Δmax, the top-pair count at δ = Δmax-1, and MMSD's
// coverage at the suite budget. The paper fixes f = 0.8; this sweep shows
// how the problem hardens as the window grows (more and deeper converging
// pairs) and how robust the best selector is to the choice. Note that
// Δmax is not monotone in the window length: pairs disconnected at an
// early snapshot are excluded from that instance even though they connect
// (at a large, collapsing distance) later.
func (s *Suite) SnapshotSweep(fractions []float64) (*AblationResult, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.6, 0.7, 0.8, 0.9}
	}
	res := &AblationResult{
		Title:   fmt.Sprintf("Snapshot sweep — G_t1 fraction vs problem shape and MMSD coverage (m=%d)", s.Config.m()),
		Columns: []string{"Dataset", "f1", "Δmax", "k(δ=Δmax-1)", "MMSD coverage %"},
	}
	for _, ds := range s.Datasets {
		for _, f1 := range fractions {
			pair, err := ds.Ev.Pair(f1, 1.0)
			if err != nil {
				return nil, err
			}
			gt, err := topk.Compute(pair, topk.Options{Workers: s.Config.Workers})
			if err != nil {
				return nil, err
			}
			delta := middleDelta(gt)
			truth := gt.PairsAtLeast(delta)
			cov, err := coverageOnPair(s, pair, candidates.MMSD(), s.Config.m(), truth)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				ds.Name,
				fmt.Sprintf("%.1f", f1),
				fmt.Sprint(gt.MaxDelta),
				fmt.Sprint(len(truth)),
				pct(cov),
			})
		}
	}
	return res, nil
}

// coverageOnPair runs a selector on an arbitrary snapshot pair (not the
// suite's cached test pair) and scores it against the given truth.
func coverageOnPair(s *Suite, pair graph.SnapshotPair, sel candidates.Selector, m int, truth []topk.Pair) (float64, error) {
	ctx := &candidates.Context{
		Pair:    pair,
		M:       m,
		L:       s.Config.l(),
		RNG:     s.randFor(int64(m) * 31),
		Workers: s.Config.Workers,
	}
	cands, err := sel.Select(ctx)
	if err != nil {
		return 0, nil // dead zone counts as zero coverage
	}
	return topk.Coverage(truth, topk.NodeSet(cands)), nil
}
