package eval

import (
	"fmt"
	"time"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/obs"
)

// LatencyTable runs the budgeted algorithm `runs` times per dataset with
// MMSD and reports the per-phase wall-time distribution (p50/p99 bucket
// upper bounds and mean) read back from the core.phase_ns histograms — the
// same numbers a /metrics scrape of a live service would yield, demonstrated
// here against the suite's synthetic datasets. Quantiles are histogram-
// resolution estimates (within 2x, the power-of-two bucket width).
func (s *Suite) LatencyTable(runs int) (*AblationResult, error) {
	if runs < 1 {
		runs = 5
	}
	res := &AblationResult{
		Title: fmt.Sprintf("Latency — per-phase wall time over %d runs/dataset (MMSD, m=%d; p50/p99 are histogram bucket bounds)",
			runs, s.Config.m()),
		Columns: []string{"Dataset", "Phase", "Count", "p50", "p99", "Mean"},
	}
	for _, ds := range s.Datasets {
		pair, ok := s.testPairs[ds.Name]
		if !ok {
			return nil, fmt.Errorf("eval: dataset %q not in suite", ds.Name)
		}
		before := core.PhaseLatencies()
		for r := 0; r < runs; r++ {
			if _, err := core.TopK(pair, core.Options{
				Selector: candidates.MMSD(), M: s.Config.m(), L: s.Config.l(), K: 10,
				Seed: s.Config.Seed + int64(r), Workers: s.Config.Workers,
			}); err != nil {
				return nil, fmt.Errorf("eval: latency run %d on %s: %w", r, ds.Name, err)
			}
		}
		after := core.PhaseLatencies()
		for _, phase := range []string{"selection", "extraction", "sort-cut", "total"} {
			d := after[phase].Sub(before[phase])
			res.Rows = append(res.Rows, []string{
				ds.Name, phase, fmt.Sprint(d.Count),
				durString(d.Quantile(0.50)), durString(d.Quantile(0.99)),
				durString(int64(d.Mean())),
			})
		}
	}
	return res, nil
}

// durString renders nanoseconds as a rounded duration.
func durString(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// FlightSummary reports the flight recorder's view of the suite's recent
// runs: record counts by kind and outcome. It reads the process-global
// recorder, so counts include any runs performed before the call.
func FlightSummary() *AblationResult {
	res := &AblationResult{
		Title:   fmt.Sprintf("Flight recorder — %d records held (%d total appended)", obs.Flight.Len(), obs.Flight.Total()),
		Columns: []string{"Kind", "Records", "OK", "Failed"},
	}
	byKind := map[string][3]int{}
	var order []string
	for _, rec := range obs.Flight.Last(0) {
		c, seen := byKind[rec.Kind]
		if !seen {
			order = append(order, rec.Kind)
		}
		c[0]++
		if rec.Outcome == "ok" {
			c[1]++
		} else {
			c[2]++
		}
		byKind[rec.Kind] = c
	}
	for _, kind := range order {
		c := byKind[kind]
		res.Rows = append(res.Rows, []string{kind, fmt.Sprint(c[0]), fmt.Sprint(c[1]), fmt.Sprint(c[2])})
	}
	return res
}
