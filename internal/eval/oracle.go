package eval

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/incidence"
	"repro/internal/landmark"
	"repro/internal/oracle"
	"repro/internal/topk"
)

// OracleTable measures the approximate-shortest-path alternative the
// paper's introduction dismisses: even with a fast landmark distance
// oracle, producing the top-k pairs still scans O(n²) candidates. The
// table reports, per dataset at δ = Δmax−1:
//
//   - the oracle scan's recall of the true pairs and its pair-query count,
//   - the budgeted MMSD run's coverage and SSSP count,
//
// making the paper's cost argument concrete: the oracle needs millions of
// queries where the budgeted algorithm needs 2m BFS runs.
func (s *Suite) OracleTable() (*AblationResult, error) {
	res := &AblationResult{
		Title: fmt.Sprintf("Oracle baseline — approximate O(n²) scan vs budgeted algorithm (l=%d, m=%d)",
			s.Config.l(), s.Config.m()),
		Columns: []string{"Dataset", "k", "oracle recall %", "pair queries",
			"MMSD coverage %", "SSSPs"},
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		delta := middleDelta(gt)
		truth := gt.PairsAtLeast(delta)
		pair := s.testPairs[ds.Name]

		po, err := oracle.NewPair(pair, landmark.MaxMin, s.Config.l(), s.randFor(11), s.Config.Workers)
		if err != nil {
			return nil, err
		}
		approx := po.ApproxTopK(len(truth), 1)
		recall := oracle.Recall(truth, approx)
		n := int64(pair.G1.NumNodes())
		queries := n * (n - 1) / 2

		cr, err := s.Coverage(ds.Name, candidates.MMSD(), s.Config.m(), delta)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			ds.Name,
			fmt.Sprint(len(truth)),
			pct(recall),
			fmt.Sprint(queries),
			pct(cr.Coverage),
			fmt.Sprint(cr.Budget.Total() + 2*s.Config.m()), // selection + extraction
		})
	}
	return res, nil
}

// OracleAccuracy reports the oracle's bound tightness per dataset — how
// close the landmark estimates are to true distances, for the record in
// EXPERIMENTS.md.
func (s *Suite) OracleAccuracy() (*AblationResult, error) {
	res := &AblationResult{
		Title:   fmt.Sprintf("Oracle accuracy — mean bound slack in hops (l=%d)", s.Config.l()),
		Columns: []string{"Dataset", "upper slack", "lower slack"},
	}
	for _, ds := range s.Datasets {
		pair := s.testPairs[ds.Name]
		o, err := oracle.Build(pair.G1, landmark.MaxMin, s.Config.l(), nil, s.Config.Workers)
		if err != nil {
			return nil, err
		}
		// Probe from a few spread-out sources.
		probes, err := landmark.Select(landmark.MaxAvg, pair.G1, 5, nil, nil)
		if err != nil {
			return nil, err
		}
		up, lo := o.MeanBoundsError(pair.G1, probes.Nodes)
		res.Rows = append(res.Rows, []string{ds.Name,
			fmt.Sprintf("%.2f", up), fmt.Sprintf("%.2f", lo)})
	}
	return res, nil
}

// ExpansionTable evaluates Selective Expansion, the Incidence variant the
// paper declined to test "for efficiency reasons": coverage, rounds, and
// SSSP cost per dataset, next to the plain unbudgeted Incidence run. The
// numbers substantiate the paper's expectation that expansion drifts toward
// the all-pairs baseline.
func (s *Suite) ExpansionTable() (*AblationResult, error) {
	res := &AblationResult{
		Title: "Selective Expansion [14] — coverage and cost vs plain Incidence",
		Columns: []string{"Dataset", "inc |A|", "inc SSSPs", "inc cov %",
			"exp |A|", "exp SSSPs", "exp rounds", "exp cov %"},
	}
	for _, ds := range s.Datasets {
		gt, err := s.TestTruth(ds.Name)
		if err != nil {
			return nil, err
		}
		delta := middleDelta(gt)
		truth := gt.PairsAtLeast(delta)
		pair := s.testPairs[ds.Name]
		full, err := incidence.Full(pair, 1, s.Config.Workers)
		if err != nil {
			return nil, err
		}
		exp, err := incidence.SelectiveExpansion(pair, incidence.ExpansionOptions{
			MinDelta: 1, MaxRounds: 3, Workers: s.Config.Workers,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			ds.Name,
			fmt.Sprint(len(full.Active)),
			fmt.Sprint(full.SSSPCount),
			pct(topk.Coverage(truth, topk.NodeSet(full.Active))),
			fmt.Sprint(len(exp.Active)),
			fmt.Sprint(exp.SSSPCount),
			fmt.Sprint(exp.Rounds),
			pct(topk.Coverage(truth, topk.NodeSet(exp.Active))),
		})
	}
	return res, nil
}
