// Benchmarks: one per table and figure of the paper's evaluation (the
// experiment harness in internal/eval regenerates the actual rows; these
// benches time each experiment end to end and surface its headline numbers
// as custom metrics), plus the ablations DESIGN.md §6 calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full printed tables come from: go run ./cmd/experiments
package convergence

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/betweenness"
	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/cover"
	"repro/internal/dynsssp"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
	"repro/internal/topk"
	"repro/internal/weighted"
)

// benchSuite is shared across benchmarks; ground truth is computed once and
// cached inside the suite.
var (
	benchOnce  sync.Once
	benchS     *eval.Suite
	benchSuErr error
)

func suite(b *testing.B) *eval.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchS, benchSuErr = eval.NewSuite(eval.SuiteConfig{
			Scale: 0.08, Seed: 42, Workers: 0, M: 30, L: 8,
		})
		if benchSuErr == nil {
			// Warm the ground-truth caches so per-iteration times measure
			// the experiment, not the one-off exact baseline.
			for _, ds := range benchS.Datasets {
				if _, err := benchS.TestTruth(ds.Name); err != nil {
					benchSuErr = err
					return
				}
			}
		}
	})
	if benchSuErr != nil {
		b.Fatal(benchSuErr)
	}
	return benchS
}

// BenchmarkTable1Budget regenerates Table 1: the per-phase SSSP allocation
// of every approach, verified live against the paper's formulas.
func BenchmarkTable1Budget(b *testing.B) {
	s := suite(b)
	var total int
	for i := 0; i < b.N; i++ {
		res, err := s.Table1("Facebook")
		if err != nil {
			b.Fatal(err)
		}
		total = res.Rows[len(res.Rows)-1].Total
	}
	b.ReportMetric(float64(total), "ssps/run")
}

// BenchmarkTable2DatasetStats regenerates Table 2: dataset characteristics
// (nodes, edges, exact diameters, Δmax, disconnected fringe).
func BenchmarkTable2DatasetStats(b *testing.B) {
	s := suite(b)
	var maxDelta int32
	for i := 0; i < b.N; i++ {
		res, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.MaxDelta > maxDelta {
				maxDelta = row.MaxDelta
			}
		}
	}
	b.ReportMetric(float64(maxDelta), "max_delta")
}

// BenchmarkTable3PairsGraph regenerates Table 3: G^p_k sizes and greedy
// vertex covers for δ ∈ {Δmax, Δmax-1, Δmax-2} on every dataset.
func BenchmarkTable3PairsGraph(b *testing.B) {
	s := suite(b)
	var coverSum int
	for i := 0; i < b.N; i++ {
		res, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		coverSum = 0
		for _, row := range res.Rows {
			coverSum += row.MaxCover
		}
	}
	b.ReportMetric(float64(coverSum), "cover_nodes")
}

// BenchmarkTable5Coverage regenerates Table 5: the coverage of all 11
// single-feature selectors plus IncDeg/IncBet on every (dataset, δ) at the
// fixed budget.
func BenchmarkTable5Coverage(b *testing.B) {
	s := suite(b)
	var mmsd float64
	for i := 0; i < b.N; i++ {
		res, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		mmsd = 0
		for _, c := range res.Cells["MMSD"] {
			mmsd += c
		}
		mmsd /= float64(len(res.Cells["MMSD"]))
	}
	b.ReportMetric(100*mmsd, "mmsd_avg_coverage_%")
}

// BenchmarkTable6Incidence regenerates Table 6: the unbudgeted Incidence
// baseline's coverage and its active-set cost.
func BenchmarkTable6Incidence(b *testing.B) {
	s := suite(b)
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		frac = 0
		for _, row := range res.Rows {
			frac += row.ActiveFraction
		}
		frac /= float64(len(res.Rows))
	}
	b.ReportMetric(100*frac, "active_set_%_of_graph")
}

// BenchmarkFigure1BudgetSweep regenerates Figure 1: coverage vs budget for
// the landmark-based and hybrid algorithms on all datasets.
func BenchmarkFigure1BudgetSweep(b *testing.B) {
	s := suite(b)
	budgets := []int{4, 8, 12, 16, 24, 32, 48}
	var final float64
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure1(budgets)
		if err != nil {
			b.Fatal(err)
		}
		final = 0
		for _, fig := range figs {
			for _, series := range fig.Series {
				if series.Label == "MMSD" {
					final += series.Values[len(series.Values)-1]
				}
			}
		}
		final /= float64(len(figs))
	}
	b.ReportMetric(100*final, "mmsd_coverage_at_max_m_%")
}

// BenchmarkFigure2CandidateQuality regenerates Figure 2: the fraction of
// candidates that are G^p_k endpoints (a) and greedy-cover members (b) on
// the Facebook dataset.
func BenchmarkFigure2CandidateQuality(b *testing.B) {
	s := suite(b)
	budgets := []int{8, 16, 24, 32}
	var quality float64
	for i := 0; i < b.N; i++ {
		inPairs, _, err := s.Figure2("Facebook", budgets)
		if err != nil {
			b.Fatal(err)
		}
		for _, series := range inPairs.Series {
			if series.Label == "MMSD" {
				quality = series.Values[len(series.Values)-1]
			}
		}
	}
	b.ReportMetric(100*quality, "mmsd_endpoint_precision_%")
}

// BenchmarkFigure3Classifiers regenerates Figure 3: L-/G-Classifier versus
// the best single-feature algorithm per dataset (training included).
func BenchmarkFigure3Classifiers(b *testing.B) {
	s := suite(b)
	budgets := []int{30, 48, 64}
	var local float64
	for i := 0; i < b.N; i++ {
		figs, err := s.Figure3(budgets)
		if err != nil {
			b.Fatal(err)
		}
		local = 0
		for _, fig := range figs {
			for _, series := range fig.Series {
				if series.Label == "L-Classifier" {
					local += series.Values[len(series.Values)-1]
				}
			}
		}
		local /= float64(len(figs))
	}
	b.ReportMetric(100*local, "lclassifier_coverage_%")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationLandmarkCount varies the landmark count l for MMSD on the
// InternetLinks dataset; the paper asserts values beyond 10 do not help.
func BenchmarkAblationLandmarkCount(b *testing.B) {
	s := suite(b)
	gt, err := s.TestTruth("InternetLinks")
	if err != nil {
		b.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	pair := s.TestPair("InternetLinks")
	for _, l := range []int{5, 10, 25} {
		b.Run(map[int]string{5: "l=5", 10: "l=10", 25: "l=25"}[l], func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				ctx := &candidates.Context{
					Pair: pair, M: 40, L: l,
					RNG:   rand.New(rand.NewSource(7)),
					Meter: budget.NewMeter(40), Workers: 0,
				}
				cands, err := candidates.MMSD().Select(ctx)
				if err != nil {
					b.Fatal(err)
				}
				cov = topk.Coverage(truth, topk.NodeSet(cands))
			}
			b.ReportMetric(100*cov, "coverage_%")
		})
	}
}

// BenchmarkAblationCoverStrategy compares the three vertex-cover heuristics
// (greedy max-coverage, maximal matching, degree-ordered) that can define
// the classifier's positive class.
func BenchmarkAblationCoverStrategy(b *testing.B) {
	s := suite(b)
	gt, err := s.TestTruth("Actors")
	if err != nil {
		b.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	pairs := gt.PairsAtLeast(delta)
	for _, tc := range []struct {
		name string
		fn   func([]topk.Pair) []int32
	}{
		{"greedy", cover.Greedy},
		{"matching", cover.Matching},
		{"degree-ordered", cover.DegreeOrdered},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				c := tc.fn(pairs)
				if !cover.IsCover(pairs, c) {
					b.Fatal("not a cover")
				}
				size = len(c)
			}
			b.ReportMetric(float64(size), "cover_size")
		})
	}
}

// BenchmarkAblationLandmarkStrategy compares landmark selection strategies
// (random, MaxMin, MaxAvg, high-degree) under the same SumDiff ranking — the
// design choice behind the hybrid algorithms.
func BenchmarkAblationLandmarkStrategy(b *testing.B) {
	s := suite(b)
	gt, err := s.TestTruth("DBLP")
	if err != nil {
		b.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	pair := s.TestPair("DBLP")
	const l, m = 8, 40
	for _, tc := range []struct {
		name     string
		strategy landmark.Strategy
	}{
		{"random", landmark.Random},
		{"maxmin", landmark.MaxMin},
		{"maxavg", landmark.MaxAvg},
		{"highdegree", landmark.HighDegree},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(11))
				set, err := landmark.Select(tc.strategy, pair.G1, l, rng, nil)
				if err != nil {
					b.Fatal(err)
				}
				norms, err := landmark.ComputeNorms(set, pair, nil, 0)
				if err != nil {
					b.Fatal(err)
				}
				cands := landmark.TopByScore(norms.L1, m-l, nil)
				cands = append(cands, set.Nodes...)
				cov = topk.Coverage(truth, topk.NodeSet(cands))
			}
			b.ReportMetric(100*cov, "coverage_%")
		})
	}
}

// BenchmarkAblationSSSP compares the SSSP engines on unit weights: BFS is
// the default; Dijkstra supports weighted graphs at a constant-factor cost.
func BenchmarkAblationSSSP(b *testing.B) {
	s := suite(b)
	g := s.TestPair("InternetLinks").G2
	wg := graph.FromUnweighted(g)
	dist := make([]int32, g.NumNodes())
	b.Run("BFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sssp.BFS(g, i%g.NumNodes(), dist)
		}
	})
	b.Run("Dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sssp.Dijkstra(wg, i%g.NumNodes(), dist)
		}
	})
}

// BenchmarkGroundTruth times the exact all-pairs baseline the budget
// formulation avoids — the denominator of every speedup claim.
func BenchmarkGroundTruth(b *testing.B) {
	s := suite(b)
	pair := s.TestPair("Facebook")
	for i := 0; i < b.N; i++ {
		if _, err := topk.Compute(pair, topk.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetedRun times one full budgeted TopK run (Algorithm 1) with
// the best-performing selector.
func BenchmarkBudgetedRun(b *testing.B) {
	s := suite(b)
	pair := s.TestPair("Facebook")
	for i := 0; i < b.N; i++ {
		res, err := TopK(pair, Options{
			Selector: MustSelector("MMSD"), M: 30, L: 8, K: 20, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Budget.Total() > 60 {
			b.Fatal("budget exceeded")
		}
	}
}

// --- Extension benchmarks (beyond the paper's evaluation) ---

// BenchmarkOracleBaseline regenerates the oracle comparison: an approximate
// landmark-oracle O(n²) scan versus the budgeted algorithm.
func BenchmarkOracleBaseline(b *testing.B) {
	s := suite(b)
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := s.OracleTable()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "datasets")
}

// BenchmarkExtensionsTable regenerates the future-work selector comparison
// (EmbedSum, R-Classifier vs MMSD and the classifiers).
func BenchmarkExtensionsTable(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtensionsTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingTracker regenerates the incremental-vs-recompute
// landmark maintenance comparison.
func BenchmarkStreamingTracker(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.StreamingTable(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStructureStats regenerates the structural-statistics table that
// validates the dataset substitutions.
func BenchmarkStructureStats(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.StructureTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedTopK times the weighted (Dijkstra) pipeline on a ring
// road with upgrades.
func BenchmarkWeightedTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const n = 1000
	var before []graph.WeightedEdge
	for i := 0; i < n; i++ {
		before = append(before, graph.WeightedEdge{U: i, V: (i + 1) % n, Weight: 3 + rng.Int31n(5)})
	}
	after := append([]graph.WeightedEdge{}, before...)
	for i := 0; i < 5; i++ {
		after = append(after, graph.WeightedEdge{U: rng.Intn(n), V: rng.Intn(n), Weight: 1})
	}
	g1, err := graph.NewWeighted(n, before)
	if err != nil {
		b.Fatal(err)
	}
	g2, err := graph.NewWeighted(n, after)
	if err != nil {
		b.Fatal(err)
	}
	pair := weighted.SnapshotPair{G1: g1, G2: g2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := weighted.TopK(pair, weighted.Options{
			Selector: weighted.SelMMSD, M: 20, L: 5, K: 10, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Budget.Total() > 40 {
			b.Fatal("budget exceeded")
		}
	}
}

// BenchmarkIncrementalBFS compares incremental distance maintenance against
// full recomputation over one evolution slice.
func BenchmarkIncrementalBFS(b *testing.B) {
	s := suite(b)
	ds, err := s.Dataset("InternetLinks")
	if err != nil {
		b.Fatal(err)
	}
	ev := ds.Ev
	start := ev.NumEdges() * 8 / 10
	slice := ev.Stream()[start:]
	g1 := ev.SnapshotPrefix(start)
	g2 := ev.SnapshotFraction(1.0)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := dynsssp.New(g1, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.ApplyStream(slice); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		dist := make([]int32, g2.NumNodes())
		for i := 0; i < b.N; i++ {
			sssp.BFS(g1, 0, dist)
			sssp.BFS(g2, 0, dist)
		}
	})
}

// BenchmarkAblationBetDiff measures the sampled-betweenness selector the
// paper rules out as too expensive — quantifying both its cost and its
// coverage next to MMSD's.
func BenchmarkAblationBetDiff(b *testing.B) {
	s := suite(b)
	gt, err := s.TestTruth("Facebook")
	if err != nil {
		b.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	pair := s.TestPair("Facebook")
	var cov float64
	for i := 0; i < b.N; i++ {
		ctx := &candidates.Context{
			Pair: pair, M: 30,
			RNG:   rand.New(rand.NewSource(31)),
			Meter: budget.NewMeter(30), Workers: 0,
		}
		cands, err := candidates.BetDiff(48).Select(ctx)
		if err != nil {
			b.Fatal(err)
		}
		cov = topk.Coverage(truth, topk.NodeSet(cands))
	}
	b.ReportMetric(100*cov, "coverage_%")
}

// BenchmarkBrandesExact times exact edge betweenness (the Incidence
// baseline's hidden setup cost).
func BenchmarkBrandesExact(b *testing.B) {
	s := suite(b)
	g := s.TestPair("Facebook").G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = betweenness.Edges(g, 0)
	}
}
