// Command gendata generates the synthetic stand-ins for the paper's four
// evaluation datasets as plain-text edge streams.
//
// Usage:
//
//	gendata -out ./data -scale 0.25 -seed 42 [-dataset Facebook]
//
// Each dataset is written to <out>/<name>.txt in the "u v t" edge-list
// format understood by the other commands.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", ".", "output directory")
	scale := flag.Float64("scale", 0.25, "dataset size relative to the paper (1.0 = full size)")
	seed := flag.Int64("seed", 42, "generation seed")
	only := flag.String("dataset", "", "generate a single dataset (Actors, InternetLinks, Facebook, DBLP); empty = all")
	flag.Parse()

	names := datagen.Names
	if *only != "" {
		names = []string{*only}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		ds, err := dataset.Generate(name, datagen.Config{Seed: *seed, Scale: *scale})
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".txt")
		if err := ds.SaveFile(path); err != nil {
			fatal(err)
		}
		full := ds.Ev.SnapshotFraction(1.0)
		fmt.Printf("%-14s -> %s (%d nodes, %d edges)\n", name, path, full.NumNodes(), full.NumEdges())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
