// Command gendata generates the synthetic stand-ins for the paper's four
// evaluation datasets as plain-text edge streams.
//
// Usage:
//
//	gendata -out ./data -scale 0.25 -seed 42 [-dataset Facebook] [-weighted]
//
// Each dataset is written to <out>/<name>.txt in the "u v t" edge-list
// format understood by the other commands. With -weighted, every edge also
// gets a fixed weight drawn uniformly from [1, -maxweight] and the files use
// the 4-column "u v t w" format, ready for convpairs -weighted.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", ".", "output directory")
	scale := flag.Float64("scale", 0.25, "dataset size relative to the paper (1.0 = full size)")
	seed := flag.Int64("seed", 42, "generation seed")
	only := flag.String("dataset", "", "generate a single dataset (Actors, InternetLinks, Facebook, DBLP); empty = all")
	weightedOut := flag.Bool("weighted", false, "attach uniform random edge weights and emit the 4-column format")
	maxWeight := flag.Int("maxweight", 10, "largest edge weight with -weighted (weights are uniform in [1, maxweight])")
	flag.Parse()

	names := datagen.Names
	if *only != "" {
		names = []string{*only}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		ds, err := dataset.Generate(name, datagen.Config{Seed: *seed, Scale: *scale})
		if err != nil {
			fatal(err)
		}
		if *weightedOut {
			if err := ds.AssignUniformWeights(*seed, int32(*maxWeight)); err != nil {
				fatal(err)
			}
		}
		path := filepath.Join(*out, name+".txt")
		if err := ds.SaveFile(path); err != nil {
			fatal(err)
		}
		full := ds.Ev.SnapshotFraction(1.0)
		kind := ""
		if *weightedOut {
			kind = fmt.Sprintf(", weights 1..%d", *maxWeight)
		}
		fmt.Printf("%-14s -> %s (%d nodes, %d edges%s)\n", name, path, full.NumNodes(), full.NumEdges(), kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
