// Command convpairs finds the top-k converging pairs of an evolving graph
// under a shortest-path budget — the library's end-user entry point.
//
// Usage:
//
//	convpairs -in data/Facebook.txt -selector MMSD -m 100 -k 20
//	convpairs -in data/DBLP.txt -selector MaxAvg -m 50 -delta 3
//	convpairs -in data/Actors.txt -exact -k 10          # unbudgeted baseline
//	convpairs -in data/Facebook.txt -weighted -m 100 -k 20
//
// The input is a "u v t" edge-list file (see cmd/gendata); the snapshots are
// the -f1 and -f2 fractions of the stream (defaults 0.8 and 1.0). With
// -weighted the input must be the 4-column "u v t w" format (gendata
// -weighted) and the run goes through the same Algorithm 1 pipeline with
// Dijkstra distances; -trace, -metricsaddr, and -events work identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	convergence "repro"
	"repro/internal/candidates"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/obs"
	"repro/internal/sssp"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	selName := flag.String("selector", "MMSD", "candidate selector (see -list)")
	modelPath := flag.String("model", "", "trained model JSON (from cmd/trainmodel); overrides -selector")
	m := flag.Int("m", 100, "endpoint budget (2m shortest-path computations)")
	l := flag.Int("l", 10, "landmark count for landmark-based selectors")
	k := flag.Int("k", 20, "number of pairs to report")
	delta := flag.Int("delta", 0, "report all pairs with distance decrease >= delta (overrides -k)")
	f1 := flag.Float64("f1", 0.8, "first snapshot fraction of the edge stream")
	f2 := flag.Float64("f2", 1.0, "second snapshot fraction of the edge stream")
	seed := flag.Int64("seed", 1, "seed for randomized selectors")
	exact := flag.Bool("exact", false, "run the unbudgeted all-pairs baseline instead")
	weightedRun := flag.Bool("weighted", false, "use edge weights (4-column input) and Dijkstra distances")
	list := flag.Bool("list", false, "list available selectors and exit")
	explain := flag.Bool("explain", false, "trace each found pair's shortest path and mark the new edges behind it")
	dotOut := flag.String("dot", "", "write a GraphViz DOT rendering of G_t2 with the found pairs highlighted")
	jsonOut := flag.String("json", "", "write the run result as a JSON report")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "across-source BFS parallelism (concurrent traversals)")
	par := flag.Int("par", 1, "intra-traversal parallelism: cores one BFS may split its frontiers across; results and budget are identical at every setting")
	engine := flag.String("engine", "auto", "BFS kernel: "+strings.Join(sssp.EngineNames(), "|"))
	paired := flag.String("paired", "full", "extraction paired mode: full (re-traverse G_t2) | incremental (derive G_t2 rows from the edge delta); same results and budget either way")
	pruneOn := flag.Bool("prune", true, "Δ-threshold pruned extraction for -k runs (bit-identical output, less traversal); -prune=false forces full traversals")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run's phases (load at chrome://tracing or ui.perfetto.dev)")
	ocli := obs.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	eng, err := sssp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	sssp.SetDefaultEngine(eng)
	sssp.SetDefaultParallelism(*par)
	pairedMode, err := convergence.ParsePairedMode(*paired)
	if err != nil {
		fatal(err)
	}

	if err := ocli.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := ocli.Finish(); err != nil {
			fatal(err)
		}
	}()

	if *list {
		for _, name := range convergence.Selectors() {
			fmt.Printf("%-8s %s\n", name, convergence.SelectorDescription(name))
		}
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in (use -list to see selectors)"))
	}
	ds, err := dataset.LoadFile(*in)
	if err != nil {
		fatal(err)
	}

	if *weightedRun {
		if *exact || *modelPath != "" || *explain || *dotOut != "" {
			fatal(fmt.Errorf("-weighted runs the budgeted name-based pipeline only (drop -exact, -model, -explain, and -dot)"))
		}
		runWeighted(ds, *selName, *m, *l, *k, int32(*delta), *f1, *f2, *seed, *workers, pairedMode, *traceOut, *jsonOut)
		return
	}

	pair, err := ds.Ev.Pair(*f1, *f2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: G_t1 %d edges, G_t2 %d edges over %d nodes\n",
		ds.Name, pair.G1.NumEdges(), pair.G2.NumEdges(), pair.G1.NumNodes())

	if *exact {
		pairs, err := convergence.Exact(pair, *k, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact top-%d converging pairs (unbudgeted baseline):\n", len(pairs))
		printPairs(pairs)
		return
	}

	var sel convergence.Selector
	if *modelPath != "" {
		var err error
		sel, err = loadModelSelector(*modelPath)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		sel, err = convergence.NewSelector(*selName)
		if err != nil {
			fatal(err)
		}
	}
	// The explicit meter is bit-identical to the self-metered default; it
	// makes the thin client's budget routing visible (convlint budgetcheck
	// requires Session queries to show where their meter comes from).
	opts := convergence.Options{
		Selector: sel, M: *m, L: *l, Seed: *seed, Workers: *workers,
		PairedMode: pairedMode, Meter: convergence.NewBudgetMeter(*m),
	}
	if *delta > 0 {
		opts.MinDelta = int32(*delta)
	} else {
		opts.K = *k
	}
	if !*pruneOn {
		opts.Prune = convergence.PruneOff
	}
	var tr *convergence.Trace
	var kernelsBefore sssp.MetricsSnapshot
	if *traceOut != "" {
		tr = convergence.NewTrace("convpairs " + ds.Name)
		opts.Trace = tr
		kernelsBefore = sssp.SnapshotMetrics()
	}
	// convpairs is a thin client of the session layer: one Session, one
	// query. A convserve daemon runs the same Session code over the same
	// snapshots, which is what makes served results bit-identical to this
	// one-shot run.
	sess, err := convergence.NewSession(pair, convergence.SessionConfig{Engine: eng, Parallelism: *par})
	if err != nil {
		fatal(err)
	}
	res, err := sess.TopK(context.Background(), opts)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		if err := writeTrace(tr, *traceOut, res.Budget, kernelsBefore); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("selector %s, budget: %s\n", res.SelectorName, res.Budget)
	fmt.Printf("found %d converging pairs from %d candidate endpoints:\n",
		len(res.Pairs), len(res.Candidates))
	printPairs(res.Pairs)
	if *explain {
		for _, p := range res.Pairs {
			exp, err := convergence.Explain(pair, p)
			if err != nil {
				fmt.Printf("  explain %v: %v\n", p, err)
				continue
			}
			fmt.Println("  ", exp)
		}
	}

	if *dotOut != "" {
		if err := writeFileWith(*dotOut, func(w io.Writer) error {
			return export.WriteDOT(w, pair.G2, export.DOTOptions{
				Name: ds.Name, Pairs: res.Pairs, Candidates: res.Candidates,
			})
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("DOT rendering written to %s\n", *dotOut)
	}
	if *jsonOut != "" {
		if err := writeFileWith(*jsonOut, func(w io.Writer) error {
			return export.WriteJSON(w, res.SelectorName, *m,
				res.Budget.Total(), res.Budget.Limit, res.Candidates, res.Pairs)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("JSON report written to %s\n", *jsonOut)
	}
}

// runWeighted is the -weighted leg: the same Algorithm 1 run on the unified
// pipeline with Dijkstra distances, sharing the trace verification and
// output plumbing with the unweighted path.
func runWeighted(ds *dataset.Dataset, selName string, m, l, k int, delta int32, f1, f2 float64, seed int64, workers int, pairedMode convergence.PairedMode, traceOut, jsonOut string) {
	sp, err := ds.WeightedPair(f1, f2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s (weighted): G_t1 %d edges, G_t2 %d edges over %d nodes\n",
		ds.Name, sp.G1.NumEdges(), sp.G2.NumEdges(), sp.G1.NumNodes())
	opts := convergence.WeightedOptions{Selector: selName, M: m, L: l, Seed: seed, Workers: workers, PairedMode: pairedMode}
	if delta > 0 {
		opts.MinDelta = delta
	} else {
		opts.K = k
	}
	var tr *convergence.Trace
	var kernelsBefore sssp.MetricsSnapshot
	if traceOut != "" {
		tr = convergence.NewTrace("convpairs " + ds.Name + " (weighted)")
		opts.Trace = tr
		kernelsBefore = sssp.SnapshotMetrics()
	}
	res, err := convergence.WeightedTopK(sp, opts)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		if err := writeTrace(tr, traceOut, res.Budget, kernelsBefore); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("selector %s (Dijkstra distances), budget: %s\n", res.SelectorName, res.Budget)
	fmt.Printf("found %d converging pairs from %d candidate endpoints:\n",
		len(res.Pairs), len(res.Candidates))
	printPairs(res.Pairs)
	if jsonOut != "" {
		if err := writeFileWith(jsonOut, func(w io.Writer) error {
			return export.WriteJSON(w, res.SelectorName, m,
				res.Budget.Total(), res.Budget.Limit, res.Candidates, res.Pairs)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("JSON report written to %s\n", jsonOut)
	}
}

// writeTrace verifies the trace against the budget report, annotates it
// with the kernel work the run performed, writes the Chrome JSON, and prints
// the phase tree. The verification is the observability layer's own
// acceptance check: every SSSP the meter charged must have been attributed
// to a phase span, so the trace's totals and the budget report are two views
// of the same spending.
func writeTrace(tr *convergence.Trace, path string, report convergence.BudgetReport, before sssp.MetricsSnapshot) error {
	byPhase := tr.SSSPByPhase()
	if got := byPhase["candidate-generation"]; got != report.CandidateGen {
		return fmt.Errorf("trace attribution mismatch: candidate-generation %d SSSPs traced, report says %d",
			got, report.CandidateGen)
	}
	if got := byPhase["top-k-extraction"]; got != report.TopK {
		return fmt.Errorf("trace attribution mismatch: top-k-extraction %d SSSPs traced, report says %d",
			got, report.TopK)
	}
	work := sssp.SnapshotMetrics().Sub(before)
	total := work.Total()
	tr.Instant("kernel-work",
		obs.Int64("kernel-calls", total.Calls),
		obs.Int64("nodes-visited", total.Nodes),
		obs.Int64("edges-scanned", total.Edges),
		obs.Int64("diropt-switches", work.DirectionOpt.Switches),
		obs.Int64("frontier-peak", total.FrontierPeak),
		// Most workers any single traversal level ran on (1 = serial BFS).
		obs.Int64("cores-used", total.CoresUsed),
		// Incremental paired extraction: traversal the delta repair did in
		// place of full second BFSes (zero in -paired=full runs).
		obs.Int64("repair-calls", work.Repair.Calls),
		obs.Int64("repair-nodes", work.Repair.Nodes),
		obs.Int64("repair-edges", work.Repair.Edges))
	if err := tr.WriteChromeFile(path); err != nil {
		return err
	}
	if err := tr.WriteTree(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (kernels: %d calls, %d nodes, %d edges)\n",
		path, total.Calls, total.Nodes, total.Edges)
	return nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadModelSelector loads a trainmodel JSON file, trying the classifier
// format first and falling back to the regression format.
func loadModelSelector(path string) (convergence.Selector, error) {
	if m, err := candidates.LoadModelFile(path); err == nil {
		return convergence.NewClassifierSelector("Classifier("+path+")", m), nil
	}
	m, err := candidates.LoadRegressionModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("not a classifier or regression model: %w", err)
	}
	return convergence.NewRegressionSelector("Regression("+path+")", m), nil
}

func printPairs(pairs []convergence.Pair) {
	for i, p := range pairs {
		fmt.Printf("%4d. (%6d, %6d)  d_t1=%-3d d_t2=%-3d Δ=%d\n", i+1, p.U, p.V, p.D1, p.D2, p.Delta)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convpairs:", err)
	os.Exit(1)
}
