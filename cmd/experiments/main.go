// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets.
//
// Usage:
//
//	experiments                       # everything, default scale 0.25
//	experiments -exp table5           # one experiment
//	experiments -scale 0.5 -m 100     # bigger graphs, bigger budget
//
// Experiments: table1 table2 table3 table4 table5 table6 fig1 fig2 fig3,
// plus the beyond-the-paper runs: ablation-landmarks ablation-cover
// ablation-strategy extensions streaming latency, or all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	convergence "repro"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/sssp"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1..table6, fig1..fig3, or all")
	engine := flag.String("engine", "auto", "BFS kernel for all shortest-path work: "+strings.Join(sssp.EngineNames(), "|")+" (ablation hook)")
	scale := flag.Float64("scale", 0.25, "dataset size relative to the paper")
	seed := flag.Int64("seed", 42, "seed for generation and randomized selectors")
	m := flag.Int("m", 50, "endpoint budget for budgeted experiments")
	l := flag.Int("l", 10, "landmark count")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "BFS parallelism")
	csvDir := flag.String("csvdir", "", "also write figure/table data series as CSV files into this directory")
	plot := flag.Bool("plot", false, "render figure series as terminal sparklines")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the budgeted end-to-end runs (table1 rows)")
	ocli := obs.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	eng, err := sssp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	sssp.SetDefaultEngine(eng)
	if err := ocli.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := ocli.Finish(); err != nil {
			fatal(err)
		}
	}()

	if *exp == "list" {
		for _, name := range []string{
			"table1", "table2", "table3", "table4", "table5", "table6",
			"fig1", "fig2", "fig3",
			"ablation-landmarks", "ablation-cover", "ablation-strategy",
			"extensions", "streaming", "oracle", "oracle-accuracy",
			"structure", "expansion", "weighted", "snapshot-sweep", "latency",
			"prune",
		} {
			fmt.Println(name)
		}
		return
	}
	start := time.Now()
	var tr *convergence.Trace
	if *traceOut != "" {
		tr = convergence.NewTrace("experiments " + *exp)
	}
	suite, err := eval.NewSuite(eval.SuiteConfig{
		Scale: *scale, Seed: *seed, Workers: *workers, M: *m, L: *l, Trace: tr,
	})
	if err != nil {
		fatal(err)
	}
	for _, ds := range suite.Datasets {
		full := ds.Ev.SnapshotFraction(1.0)
		fmt.Printf("generated %-14s %6d nodes %6d edges\n", ds.Name, full.NumNodes(), full.NumEdges())
	}
	fmt.Println()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if !want(name) {
			return
		}
		ran = true
		t0 := time.Now()
		res, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(res)
		fmt.Printf("[%s took %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() (fmt.Stringer, error) { return suite.Table1("Facebook") })
	run("table2", func() (fmt.Stringer, error) { return suite.Table2() })
	run("table3", func() (fmt.Stringer, error) { return suite.Table3() })
	if want("table4") {
		ran = true
		fmt.Println(eval.Table4())
	}
	run("table5", func() (fmt.Stringer, error) { return suite.Table5() })
	run("table6", func() (fmt.Stringer, error) { return suite.Table6() })
	run("fig1", func() (fmt.Stringer, error) {
		figs, err := suite.Figure1(nil)
		if err == nil && *plot {
			for _, fig := range figs {
				fmt.Println(fig.Chart())
			}
		}
		return multi(figs), err
	})
	if want("fig2") {
		ran = true
		inPairs, inCover, err := suite.Figure2("Facebook", nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(inPairs)
		fmt.Println(inCover)
	}
	run("fig3", func() (fmt.Stringer, error) {
		figs, err := suite.Figure3(nil)
		if err == nil && *plot {
			for _, fig := range figs {
				fmt.Println(fig.Chart())
			}
		}
		return multi(figs), err
	})
	run("ablation-landmarks", func() (fmt.Stringer, error) { return suite.AblationLandmarkCount(nil) })
	run("ablation-cover", func() (fmt.Stringer, error) { return suite.AblationCoverStrategy() })
	run("ablation-strategy", func() (fmt.Stringer, error) { return suite.AblationLandmarkStrategy() })
	run("extensions", func() (fmt.Stringer, error) { return suite.ExtensionsTable() })
	run("streaming", func() (fmt.Stringer, error) { return suite.StreamingTable(4) })
	run("oracle", func() (fmt.Stringer, error) { return suite.OracleTable() })
	run("oracle-accuracy", func() (fmt.Stringer, error) { return suite.OracleAccuracy() })
	run("structure", func() (fmt.Stringer, error) { return suite.StructureTable() })
	run("expansion", func() (fmt.Stringer, error) { return suite.ExpansionTable() })
	run("weighted", func() (fmt.Stringer, error) { return suite.WeightedTable() })
	run("snapshot-sweep", func() (fmt.Stringer, error) { return suite.SnapshotSweep(nil) })
	run("prune", func() (fmt.Stringer, error) { return suite.PruneTable(nil) })
	run("latency", func() (fmt.Stringer, error) {
		lat, err := suite.LatencyTable(5)
		if err != nil {
			return nil, err
		}
		fmt.Println(lat)
		return eval.FlightSummary(), nil
	})

	if *csvDir != "" {
		if err := writeCSVs(suite, *csvDir); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV series written to %s\n", *csvDir)
	}

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (sssp by phase: %v)\n", *traceOut, tr.SSSPByPhase())
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

// multi joins several figure results into one Stringer.
type multi []*eval.FigureResult

func (m multi) String() string {
	var b strings.Builder
	for i, fig := range m {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(fig.String())
	}
	return b.String()
}

// writeCSVs regenerates the main data series (Table 5 and the three
// figures) as CSV files for external plotting.
func writeCSVs(suite *eval.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	t5, err := suite.Table5()
	if err != nil {
		return err
	}
	if err := write("table5.csv", t5.WriteCSV); err != nil {
		return err
	}
	fig1, err := suite.Figure1(nil)
	if err != nil {
		return err
	}
	for _, fig := range fig1 {
		if err := write("fig1_"+fig.Dataset+".csv", fig.WriteCSV); err != nil {
			return err
		}
	}
	inPairs, inCover, err := suite.Figure2("Facebook", nil)
	if err != nil {
		return err
	}
	if err := write("fig2a_facebook.csv", inPairs.WriteCSV); err != nil {
		return err
	}
	if err := write("fig2b_facebook.csv", inCover.WriteCSV); err != nil {
		return err
	}
	fig3, err := suite.Figure3(nil)
	if err != nil {
		return err
	}
	for _, fig := range fig3 {
		if err := write("fig3_"+fig.Dataset+".csv", fig.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
