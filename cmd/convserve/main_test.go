package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestDaemonLifecycle drives runDaemon through a full service run: start,
// ingest, seal, query, then a SIGTERM that must drain the server, flush the
// flight recorder to -events, and return cleanly. This pins the graceful
// shutdown contract the README documents for supervised deployments.
func TestDaemonLifecycle(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	fs := flag.NewFlagSet("convserve-test", flag.ContinueOnError)
	ocli := obs.BindCLIFlags(fs)
	if err := fs.Parse([]string{"-events", events}); err != nil {
		t.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	cfg := serve.Config{Immediate: true}
	tenants := []serve.TenantRequest{{Name: "ops", Limit: 0}}
	go func() {
		done <- runDaemon("127.0.0.1:0", cfg, tenants, ocli, sig, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	// Ingest a small random stream, sealing an epoch at 80% and at the end.
	rng := rand.New(rand.NewSource(7))
	var stream strings.Builder
	for v := 1; v < 120; v++ {
		fmt.Fprintf(&stream, "%d %d %d\n", rng.Intn(v), v, v)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(stream.String(), "\n"), "\n")
	cut := len(lines) * 8 / 10
	for _, part := range []string{strings.Join(lines[:cut], ""), strings.Join(lines[cut:], "")} {
		resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(part))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/ingest status %d", resp.StatusCode)
		}
		resp, err = http.Post(base+"/seal", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/seal status %d", resp.StatusCode)
		}
	}

	q, _ := json.Marshal(serve.QueryRequest{Tenant: "ops", Selector: "MMSD", M: 10, L: 4, K: 5, Seed: 1})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	var qr serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d", resp.StatusCode)
	}
	if qr.Report.SSSPSpent == 0 {
		t.Error("query spent no budget")
	}

	// Something for the flight recorder to flush (queries themselves do not
	// append run records; daemons record their own lifecycle events).
	obs.Flight.Append(obs.RunRecord{Kind: "convserve-test", Outcome: "ok"})

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runDaemon: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	// The listener must be closed...
	if _, err := http.Get(base + "/epochs"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
	// ...and the flight recorder flushed to the -events file.
	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("-events file not written on SIGTERM: %v", err)
	}
	defer f.Close()
	found := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec obs.RunRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL record: %v", err)
		}
		if rec.Kind == "convserve-test" {
			found = true
		}
	}
	if !found {
		t.Error("flushed events file is missing the appended record")
	}
}

// TestTenantFlag pins the -tenant name=limit parser.
func TestTenantFlag(t *testing.T) {
	var tf tenantFlags
	for _, bad := range []string{"alice", "=5", "alice=", "alice=x"} {
		if err := tf.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	tf = nil
	if err := tf.Set("alice=100"); err != nil {
		t.Fatal(err)
	}
	if err := tf.Set("bob=0"); err != nil {
		t.Fatal(err)
	}
	want := tenantFlags{{Name: "alice", Limit: 100}, {Name: "bob", Limit: 0}}
	if len(tf) != 2 || tf[0] != want[0] || tf[1] != want[1] {
		t.Errorf("parsed %+v, want %+v", tf, want)
	}
	if got := tf.String(); got != "alice=100,bob=0" {
		t.Errorf("String() = %q", got)
	}
}
