// Command convserve runs the converging-pairs pipeline as a long-lived
// HTTP/JSON service: edges stream in on /ingest, are frozen into immutable
// epochs on /seal, and budgeted top-k queries run over any retained
// (t1, t2) epoch window on /query. Concurrent queries coalesce their SSSP
// sources into shared bit-parallel sweeps, and every query is admitted
// against its tenant's SSSP allowance — the multi-tenant, always-on face of
// the same Algorithm 1 a one-shot convpairs run executes (results are
// bit-identical; see internal/serve).
//
// Usage:
//
//	convserve -addr :8080 -tenant alice=10000 -tenant bob=4000
//	curl --data-binary @data/Facebook.txt localhost:8080/ingest
//	curl -XPOST localhost:8080/seal
//	curl -d '{"tenant":"alice","selector":"MMSD","m":100,"k":20}' localhost:8080/query
//
// The obs flags (-metricsaddr, -events, -hold) work as in convpairs; the
// serving mux itself also exposes /metrics, /debug/events, and /debug/pprof.
// On SIGTERM or interrupt the daemon stops accepting requests, drains
// in-flight queries, flushes the flight recorder to -events, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sssp"
)

// tenantFlags collects repeatable -tenant name=limit declarations.
type tenantFlags []serve.TenantRequest

func (t *tenantFlags) String() string {
	parts := make([]string, len(*t))
	for i, d := range *t {
		parts[i] = fmt.Sprintf("%s=%d", d.Name, d.Limit)
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(s string) error {
	name, limitStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=limit, got %q", s)
	}
	limit, err := strconv.Atoi(limitStr)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %v", s, err)
	}
	*t = append(*t, serve.TenantRequest{Name: name, Limit: limit})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	universe := flag.Int("universe", 0, "minimum node-universe size for every epoch (0 grows with the edges)")
	retain := flag.Int("retain", 0, "epochs to retain (0 = unlimited; old unpinned epochs are pruned)")
	batchWindow := flag.Duration("batchwindow", 0, "cross-request SSSP coalescing window (0 = library default)")
	immediate := flag.Bool("immediate", false, "disable the coalescing wait: every SSSP request sweeps at once")
	maxSessions := flag.Int("maxsessions", 0, "cached per-window query sessions (0 = default)")
	tenantLimit := flag.Int("tenantlimit", 0, "SSSP allowance for tenants auto-created by their first query (0 = unlimited)")
	workers := flag.Int("workers", 0, "across-source BFS parallelism per query (0 = all cores)")
	par := flag.Int("par", 1, "intra-traversal parallelism: cores one BFS may split its frontiers across")
	engine := flag.String("engine", "auto", "BFS kernel: "+strings.Join(sssp.EngineNames(), "|"))
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "declare a tenant as name=limit (repeatable; limit <= 0 = unlimited)")
	ocli := obs.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	eng, err := sssp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Universe:    *universe,
		Retain:      *retain,
		Engine:      eng,
		Parallelism: *par,
		Workers:     *workers,
		BatchWindow: *batchWindow,
		Immediate:   *immediate,
		TenantLimit: *tenantLimit,
		MaxSessions: *maxSessions,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := runDaemon(*addr, cfg, tenants, ocli, sig, nil); err != nil {
		fatal(err)
	}
}

// shutdownTimeout bounds how long in-flight queries may drain after a stop
// signal before the listener is torn down regardless.
const shutdownTimeout = 5 * time.Second

// runDaemon brings the service up and blocks until a stop signal arrives,
// then shuts down gracefully: flush the flight recorder first (so a
// supervisor's SIGKILL after its grace period can no longer lose the run
// records), drain in-flight requests, release the epoch pins, and run the
// obs teardown. If ready is non-nil, the bound listen address is sent on it
// once the server is accepting — the lifecycle test's synchronization point.
func runDaemon(addr string, cfg serve.Config, tenants []serve.TenantRequest, ocli *obs.CLI, sig <-chan os.Signal, ready chan<- string) error {
	if err := ocli.Start(); err != nil {
		return err
	}
	s := serve.New(cfg)
	defer s.Close()
	for _, t := range tenants {
		s.Registry().Tenant(t.Name, t.Limit)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("convserve listening on http://%s (POST /ingest, /seal, /query)\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case got := <-sig:
		fmt.Printf("convserve: %v, shutting down\n", got)
	case err := <-serveErr:
		return err
	}

	// Events first: the recorder's contents are the part of the shutdown an
	// impatient supervisor can permanently destroy.
	if err := ocli.FlushEvents(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return ocli.Finish()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "convserve:", err)
	os.Exit(1)
}
