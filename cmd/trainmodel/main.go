// Command trainmodel trains a classification- or regression-based candidate
// selector on an edge-list dataset and saves the model as JSON for later
// use by convpairs.
//
// Usage:
//
//	trainmodel -in data/Facebook.txt -out fb-model.json
//	trainmodel -in data/DBLP.txt -kind ridge -delta-offset 1 -out dblp.json
//
// Training follows the paper's protocol: the model is fitted on the (60%,
// 70%) snapshot pair with the greedy vertex cover of its top converging
// pairs (at δ = Δmax − delta-offset) as the positive class — or, for ridge
// models, with G^p_k participation counts as regression targets.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/candidates"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/topk"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	out := flag.String("out", "model.json", "output model path")
	kind := flag.String("kind", "logistic", "model kind: logistic (classifier) or ridge (regression)")
	global := flag.Bool("global", false, "include dataset-level features (G-Classifier style)")
	l := flag.Int("l", 10, "landmark count for feature extraction")
	offset := flag.Int("delta-offset", 1, "positive class uses δ = Δmax - offset")
	f1 := flag.Float64("f1", dataset.TrainFrac1, "training snapshot 1 fraction")
	f2 := flag.Float64("f2", dataset.TrainFrac2, "training snapshot 2 fraction")
	seed := flag.Int64("seed", 1, "feature extraction seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "BFS parallelism")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("missing -in"))
	}
	ds, err := dataset.LoadFile(*in)
	if err != nil {
		fatal(err)
	}
	pair, err := ds.Ev.Pair(*f1, *f2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training pair: %d / %d edges over %d nodes\n",
		pair.G1.NumEdges(), pair.G2.NumEdges(), pair.G1.NumNodes())

	gt, err := topk.Compute(pair, topk.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	delta := gt.MaxDelta - int32(*offset)
	if delta < 1 {
		delta = 1
	}
	pairs := gt.PairsAtLeast(delta)
	fmt.Printf("ground truth: Δmax=%d, %d pairs at δ=%d\n", gt.MaxDelta, len(pairs), delta)

	opts := candidates.TrainOptions{Global: *global, L: *l, Workers: *workers, Seed: *seed}
	switch *kind {
	case "logistic":
		positives := map[int32]bool{}
		for _, u := range cover.Greedy(pairs) {
			positives[u] = true
		}
		fmt.Printf("positive class: %d greedy-cover nodes\n", len(positives))
		model, err := candidates.Train(
			[]candidates.TrainSample{{Pair: pair, Positives: positives}}, opts)
		if err != nil {
			fatal(err)
		}
		if err := model.SaveFile(*out); err != nil {
			fatal(err)
		}
	case "ridge":
		targets := candidates.PairDegreeTargets(pairs)
		fmt.Printf("regression targets: %d nodes with nonzero G^p_k degree\n", len(targets))
		model, err := candidates.TrainRegression(
			[]candidates.RegressionSample{{Pair: pair, Targets: targets}}, opts)
		if err != nil {
			fatal(err)
		}
		if err := model.SaveFile(*out); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q (logistic or ridge)", *kind))
	}
	fmt.Printf("saved %s model to %s\n", *kind, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainmodel:", err)
	os.Exit(1)
}
