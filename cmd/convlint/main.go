// Command convlint is the repo's static-analysis multichecker. It runs the
// internal/analysis suite — budgetcheck, hotalloc, scratchcopy,
// directivecheck, atomiccheck, capturecheck, scratchescape, determinism —
// over the named package patterns and exits non-zero on any diagnostic:
//
//	go run ./cmd/convlint ./...
//
// Individual analyzers can be disabled for bisection with -disable, and
// -list prints the suite:
//
//	go run ./cmd/convlint -disable hotalloc,scratchcopy ./...
//	go run ./cmd/convlint -list
//
// The first four analyzers enforce the reproduction's paper-level
// invariants: every SSSP entry-point call is charged to a budget.Meter (or
// carries an explicit //convlint:unbudgeted reason), //convlint:hotpath
// kernels stay allocation-free, and Scratch/Meter/CSR state is shared by
// pointer only. The other four are the concurrency contracts guarding the
// multicore kernels: atomiccheck (storage with any sync/atomic site is
// atomic at every site), capturecheck (goroutine closures capture only
// read-only, sync-safe, or index-partitioned state), scratchescape
// (per-worker scratch never leaves its worker), and determinism (no map
// order, wall clock, global rand, or pointer identity in result paths).
// Intentional exceptions carry reasoned //convlint:shared or
// //convlint:nondet directives, validated by directivecheck.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: convlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(*disable, ",") {
			skip[strings.TrimSpace(name)] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(os.Stdout, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "convlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func run(out io.Writer, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader()
	findings := 0
	for _, lp := range pkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.LoadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return findings, err
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			fmt.Fprintf(out, "%s: %s: %s\n", loader.Fset().Position(d.Pos), d.Analyzer, d.Message)
		}
		findings += len(diags)
	}
	return findings, nil
}

// goList expands package patterns with the go command, which needs no
// network for an all-stdlib module.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
