package convergence

import (
	"math/rand"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dynsssp"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/topk"
	"repro/internal/weighted"
)

// --- Session-oriented pipeline (the serving deployment) ---

type (
	// Session is a reusable TopK pipeline over one snapshot pair: distance
	// engines, scratch buffers, and selector caches persist across queries,
	// and each TopK call runs under a context.
	Session = core.Session
	// SessionConfig pins a Session's BFS kernel and intra-traversal
	// parallelism.
	SessionConfig = core.SessionConfig

	// Ingester accumulates a timestamped edge stream and seals it into
	// immutable epochs.
	Ingester = graph.Ingester
	// IngesterOptions tunes an Ingester (node universe floor, retention).
	IngesterOptions = graph.IngesterOptions
	// EpochStore holds the sealed epochs and hands out pinned windows.
	EpochStore = graph.Store
	// Epoch is one immutable sealed snapshot with its sequence number.
	Epoch = graph.Epoch
	// EpochWindow is a pinned (t1, t2) snapshot pair; Close releases the
	// pins so retention may prune the epochs.
	EpochWindow = graph.Window
	// Delta is the edge difference between two snapshots.
	Delta = graph.Delta

	// BudgetMeter charges and enforces an SSSP allowance (Options.Meter).
	BudgetMeter = budget.Meter
	// BudgetRegistry tracks per-tenant SSSP admission meters.
	BudgetRegistry = budget.Registry
	// BudgetTenant is one tenant's admission meter; QueryMeter derives the
	// per-query 2m allowance chained to it.
	BudgetTenant = budget.Tenant

	// Batcher coalesces concurrent single-source distance requests into
	// shared multi-source sweeps; results are bit-identical to unbatched
	// calls.
	Batcher = dist.Batcher
	// BatcherOptions tunes a Batcher's coalescing window and batch size.
	BatcherOptions = dist.BatcherOptions
)

// NewSession builds a reusable query session over a snapshot pair. A
// Session's TopK is bit-identical to the package-level TopK at every
// setting; it differs only in reuse (cached engines and scratch) and in
// taking a context for cancellation.
func NewSession(pair SnapshotPair, cfg SessionConfig) (*Session, error) {
	return core.NewSession(pair, cfg)
}

// NewIngester starts an empty edge ingester whose sealed epochs land in its
// EpochStore.
func NewIngester(opts IngesterOptions) *Ingester { return graph.NewIngester(opts) }

// NewDelta computes the edge difference between two snapshots over the same
// node universe.
func NewDelta(g1, g2 *Graph) *Delta { return graph.NewDelta(g1, g2) }

// NewBudgetRegistry creates an empty tenant registry.
func NewBudgetRegistry() *BudgetRegistry { return budget.NewRegistry() }

// NewBudgetMeter creates the paper's standard per-query meter: m candidate
// endpoints, 2m SSSP computations. Passing it via Options.Meter is
// bit-identical to the self-metered default; it exists so callers holding a
// Session show where the query's budget comes from.
func NewBudgetMeter(m int) *BudgetMeter { return budget.NewMeter(m) }

// ErrBudgetExhausted is returned (wrapped) when a query's tenant or meter
// has no SSSP allowance left.
var ErrBudgetExhausted = budget.ErrExhausted

// --- Streaming / monitoring (sliding-window deployment) ---

type (
	// MonitorConfig configures a windowed Watch run.
	MonitorConfig = monitor.Config
	// WindowReport is the outcome of one monitoring window.
	WindowReport = monitor.WindowReport
	// LandmarkTracker maintains landmark distance vectors incrementally
	// across the edge stream (one BFS per landmark, total).
	LandmarkTracker = monitor.LandmarkTracker
	// DynamicBFS maintains one source's BFS distances under edge
	// insertions.
	DynamicBFS = dynsssp.DynamicBFS
)

// Watch slices the stream at the given ascending fractions and reports the
// converging pairs of every consecutive window under a budget.
func Watch(ev *Evolving, fractions []float64, cfg MonitorConfig) ([]WindowReport, error) {
	return monitor.Watch(ev, fractions, cfg)
}

// EvenWindows splits [start, 1] into count equal windows for Watch.
func EvenWindows(start float64, count int) []float64 {
	return monitor.EvenWindows(start, count)
}

// NewLandmarkTracker starts incremental landmark maintenance at the given
// edge prefix of the stream.
func NewLandmarkTracker(ev *Evolving, landmarks []int, startPrefix int) (*LandmarkTracker, error) {
	return monitor.NewLandmarkTracker(ev, landmarks, startPrefix)
}

// NewDynamicBFS starts incremental single-source maintenance from src on an
// initial snapshot.
func NewDynamicBFS(g *Graph, src int) (*DynamicBFS, error) { return dynsssp.New(g, src) }

// --- Weighted graphs ---

type (
	// WeightedSnapshotPair is a weighted (G_t1, G_t2) pair; G_t2 must
	// dominate G_t1 (every edge present with equal or smaller weight).
	WeightedSnapshotPair = weighted.SnapshotPair
	// WeightedOptions configures a budgeted weighted run.
	WeightedOptions = weighted.Options
	// WeightedResult is the outcome of a budgeted weighted run.
	WeightedResult = weighted.Result
)

// WeightedTopK runs the budgeted converging-pairs algorithm with Dijkstra
// distances. It is the same Algorithm 1 implementation as TopK — selection,
// extraction, budget metering, and tracing run generically over a distance
// engine — so every registry selector works (see WeightedSelectors); an
// empty Options.Selector means weighted.DefaultSelector ("Degree"), and
// unknown names error listing the valid set.
func WeightedTopK(pair WeightedSnapshotPair, opts WeightedOptions) (*WeightedResult, error) {
	return weighted.TopK(pair, opts)
}

// WeightedSelectors lists the selector names WeightedTopK accepts, sorted.
// Because the pipeline is metric-agnostic, this is the full single-feature
// registry — the same names Selectors reports.
func WeightedSelectors() []string { return weighted.Selectors() }

// WeightedGroundTruth runs the exact weighted all-pairs sweep.
func WeightedGroundTruth(pair WeightedSnapshotPair, workers int) (*GroundTruth, error) {
	return weighted.Compute(pair, topk.Options{Workers: workers})
}

// --- Orion-style embedding (the paper's future-work direction) ---

type (
	// GraphEmbedding maps nodes to Euclidean coordinates approximating
	// shortest-path distances.
	GraphEmbedding = embed.Embedding
	// EmbedOptions tunes the embedding optimization.
	EmbedOptions = embed.Options
)

// EmbedGraph builds an Orion-style embedding of g over the given anchor
// landmarks (rows may carry precomputed BFS vectors, or nil).
func EmbedGraph(g *Graph, landmarks []int, rows [][]int32, opts EmbedOptions, rng *rand.Rand) (*GraphEmbedding, error) {
	return embed.Embed(g, landmarks, rows, opts, rng)
}

// NewEmbedSelector builds the embedding-based candidate generator
// ("EmbedSum"): probes is the random probe-sample size (0 = 64).
func NewEmbedSelector(opts EmbedOptions, probes int) Selector {
	return embed.NewSelector(opts, probes)
}

// --- Regression-based selection (the paper's ref-[5] direction) ---

type (
	// RegressionModel ranks nodes by predicted converging-pair
	// participation.
	RegressionModel = candidates.RegressionModel
	// RegressionSample is one training pair with per-node targets.
	RegressionSample = candidates.RegressionSample
)

// TrainRegression fits the regression-based selector model.
func TrainRegression(samples []RegressionSample, opts candidates.TrainOptions) (*RegressionModel, error) {
	return candidates.TrainRegression(samples, opts)
}

// NewRegressionSelector wraps a trained regression model as a Selector.
func NewRegressionSelector(name string, model *RegressionModel) Selector {
	return candidates.Regression(name, model)
}

// PairDegreeTargets converts a top-k pair set into regression targets (the
// G^p_k degree of every endpoint).
func PairDegreeTargets(pairs []Pair) map[int32]float64 {
	return candidates.PairDegreeTargets(pairs)
}

// --- Explanations ---

// Explanation attributes a converging pair to the new edges on its
// shortest path in G_t2.
type Explanation = core.Explanation

// Explain traces one shortest path behind a converging pair and splits it
// into pre-existing and newly inserted edges.
func Explain(pair SnapshotPair, p Pair) (*Explanation, error) {
	return core.Explain(pair, p)
}

// EdgeImpact counts how many converging pairs route over a new edge.
type EdgeImpact = core.EdgeImpact

// CriticalNewEdges ranks the new edges by how many of the given converging
// pairs route over them (explanation aggregation).
func CriticalNewEdges(pair SnapshotPair, pairs []Pair, topN int) []EdgeImpact {
	return core.CriticalNewEdges(pair, pairs, topN)
}

// FeatureWeight pairs a classifier feature name with its trained weight.
type FeatureWeight = candidates.FeatureWeight
