// Package convergence identifies converging pairs of nodes on a budget: the
// pairs of nodes in an evolving graph whose shortest-path distance decreased
// the most between two snapshots, found with a fixed budget of single-source
// shortest-path computations. It is a from-scratch Go implementation of
// "Identifying Converging Pairs of Nodes on a Budget" (EDBT 2015).
//
// # Quick start
//
//	ev, _ := convergence.NewEvolving(stream)      // timestamped edge stream
//	pair, _ := ev.Pair(0.8, 1.0)                   // G_t1 = 80%, G_t2 = full
//	res, _ := convergence.TopK(pair, convergence.Options{
//		Selector: convergence.MustSelector("MMSD"),
//		M:        100, // at most 2*100 shortest-path computations
//		K:        50,  // the 50 most-converging pairs
//	})
//	for _, p := range res.Pairs {
//		fmt.Printf("(%d,%d) came closer by %d hops\n", p.U, p.V, p.Delta)
//	}
//
// The selector decides which m nodes get their shortest paths computed;
// thirteen strategies from the paper are available (see Selectors), from
// degree heuristics through dispersion and landmark rankings to trained
// classifiers, plus the Incidence baseline in internal/incidence.
package convergence

import (
	"math/rand"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topk"
)

// Paired-extraction modes, re-exported for Options.PairedMode.
const (
	// PairedFull recomputes every G_t2 row with a full traversal (default).
	PairedFull = dist.PairedFull
	// PairedIncremental repairs a copy of each G_t1 row over the edge delta.
	PairedIncremental = dist.PairedIncremental
)

// ParsePairedMode parses "full" / "incremental" (the -paired CLI flag).
func ParsePairedMode(s string) (PairedMode, error) { return dist.ParsePairedMode(s) }

// Prune modes, re-exported for Options.Prune.
const (
	// PruneAuto (default) runs top-K extraction with the Δ-threshold pruning;
	// output is bit-identical, only traversal work drops. MinDelta queries
	// are never pruned.
	PruneAuto = core.PruneAuto
	// PruneOff forces full traversals — the differential baseline.
	PruneOff = core.PruneOff
)

// Re-exported graph substrate types. Node IDs are dense ints in
// [0, NumNodes); snapshots from one Evolving stream share a node universe.
type (
	// Graph is an immutable undirected snapshot in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Edge is an undirected edge.
	Edge = graph.Edge
	// TimedEdge is an edge insertion with its time slice.
	TimedEdge = graph.TimedEdge
	// Evolving is a growing graph defined by a timestamped edge stream.
	Evolving = graph.Evolving
	// SnapshotPair is a (G_t1, G_t2) instance pair with G_t2 ⊇ G_t1.
	SnapshotPair = graph.SnapshotPair
	// Weighted is an undirected graph with non-negative edge weights.
	Weighted = graph.Weighted
	// WeightedEdge is an edge with a weight.
	WeightedEdge = graph.WeightedEdge

	// Pair is a converging pair: endpoints (U < V), distances in both
	// snapshots, and the decrease Delta = D1 - D2.
	Pair = topk.Pair
	// GroundTruth is the exact result of an unbudgeted all-pairs sweep.
	GroundTruth = topk.GroundTruth
	// PairsGraph is G^p_k, the graph whose edges are the top-k pairs.
	PairsGraph = topk.PairsGraph

	// Selector generates candidate endpoints under a budget.
	Selector = candidates.Selector
	// SelectorContext carries a selector invocation's inputs.
	SelectorContext = candidates.Context
	// ClassifierModel is a trained classification-based selector model.
	ClassifierModel = candidates.Model
	// TrainSample is a labeled snapshot pair for classifier training.
	TrainSample = candidates.TrainSample

	// Options configures a budgeted TopK run.
	Options = core.Options
	// Result is the outcome of a budgeted TopK run.
	Result = core.Result
	// BudgetReport is the per-phase SSSP spending of a run.
	BudgetReport = budget.Report
	// PairedMode selects how extraction produces G_t2 distance rows (see
	// Options.PairedMode): PairedFull re-traverses, PairedIncremental derives
	// them from the G_t1 rows via the snapshot edge delta. The budget is
	// identical either way.
	PairedMode = dist.PairedMode
	// PruneMode controls the Δ-threshold pruned extraction (Options.Prune):
	// PruneAuto prunes top-K queries bit-identically, PruneOff disables.
	PruneMode = core.PruneMode
	// PruneStats reports what pruning did in one run (Result.Pruned).
	PruneStats = core.PruneStats
	// WarmCache memoizes selections and kth-Δ prune seeds across repeated
	// queries over one snapshot pair (Options.Warm); create with NewWarmCache.
	WarmCache = candidates.Warm

	// Trace records the phases of a run as spans (set Options.Trace or
	// MonitorConfig.Trace) and exports them as a Chrome trace_event JSON
	// timeline or a human-readable tree.
	Trace = obs.Trace
)

// NewTrace starts an empty observability trace; thread it through
// Options.Trace (one run) or MonitorConfig.Trace (a windowed watch), then
// export with WriteChrome/WriteChromeFile or WriteTree.
func NewTrace(name string) *Trace { return obs.New(name) }

// NewWarmCache creates an empty warm cache for Options.Warm. Scope one cache
// to one snapshot pair; reuse across pairs would be unsound.
func NewWarmCache() *WarmCache { return candidates.NewWarm() }

// NewBuilder creates a Builder over a node universe of size n.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a Graph over n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// NewEvolving validates and wraps a timestamped edge stream.
func NewEvolving(stream []TimedEdge) (*Evolving, error) { return graph.NewEvolving(stream) }

// NewWeighted builds a weighted undirected graph.
func NewWeighted(n int, edges []WeightedEdge) (*Weighted, error) {
	return graph.NewWeighted(n, edges)
}

// TopK runs the budgeted top-k converging-pairs algorithm (the paper's
// Algorithm 1) on a snapshot pair. The run performs at most 2*opts.M
// single-source shortest-path computations; Result.Budget reports the exact
// spending.
func TopK(pair SnapshotPair, opts Options) (*Result, error) { return core.TopK(pair, opts) }

// Exact computes the true top-k converging pairs with the unbudgeted
// quadratic baseline (all-pairs BFS on both snapshots, parallelized).
func Exact(pair SnapshotPair, k, workers int) ([]Pair, error) { return core.Exact(pair, k, workers) }

// ComputeGroundTruth runs the exact all-pairs sweep, returning the Δ
// histogram, Δmax, exact diameters, and all pairs within the slack window.
func ComputeGroundTruth(pair SnapshotPair, workers int) (*GroundTruth, error) {
	return topk.Compute(pair, topk.Options{Workers: workers})
}

// NewPairsGraph builds G^p_k from a top-k pair set.
func NewPairsGraph(pairs []Pair) *PairsGraph { return topk.NewPairsGraph(pairs) }

// Coverage returns the fraction of pairs with at least one endpoint among
// the candidate nodes — the paper's evaluation metric.
func Coverage(pairs []Pair, candidateNodes []int) float64 {
	return topk.Coverage(pairs, topk.NodeSet(candidateNodes))
}

// NewSelector constructs one of the paper's candidate-generation algorithms
// by name: Degree, DegDiff, DegRel, MaxMin, MaxAvg, SumDiff, MaxDiff, MMSD,
// MMMD, MASD, MAMD, or Random.
func NewSelector(name string) (Selector, error) { return candidates.ByName(name) }

// MustSelector is NewSelector that panics on unknown names; convenient for
// literals in examples and tests.
func MustSelector(name string) Selector {
	sel, err := candidates.ByName(name)
	if err != nil {
		panic(err)
	}
	return sel
}

// Selectors lists the available selector names. Every listed selector runs
// on both pipelines — unweighted TopK and WeightedTopK — because selection
// reads only degrees and metered distance rows through the shared distance
// engine.
func Selectors() []string { return candidates.Names() }

// SelectorDescription returns the one-line description of a selector
// (the paper's Table 4), or "" if unknown.
func SelectorDescription(name string) string { return candidates.Descriptions[name] }

// TrainClassifier trains a classification-based selector from labeled
// snapshot pairs (positives are typically the greedy vertex cover of the
// training pair's G^p_k; see GreedyCover). Wrap the result with
// NewClassifierSelector.
func TrainClassifier(samples []TrainSample, opts candidates.TrainOptions) (*ClassifierModel, error) {
	return candidates.Train(samples, opts)
}

// NewClassifierSelector wraps a trained model as a Selector.
func NewClassifierSelector(name string, model *ClassifierModel) Selector {
	return candidates.Classifier(name, model)
}

// GreedyCover computes the greedy vertex cover of a pair set — the paper's
// reference candidate set and the positive class for classifier training.
// (Re-exported from internal/cover to keep the public import graph flat.)
func GreedyCover(pairs []Pair) []int32 { return coverGreedy(pairs) }

// NewRNG returns a deterministic RNG for seeding selector runs.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
