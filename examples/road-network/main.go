// Road network: the weighted variant of the converging-pairs problem from
// the paper's introduction — "the path we want to follow when moving from
// one place to another in a traffic network". Road segments carry travel
// times; upgrades shrink weights and bypasses add cheap edges, and we ask
// which city pairs the construction season brought closest together.
//
//	go run ./examples/road-network
package main

import (
	"fmt"
	"log"
	"math/rand"

	convergence "repro"
)

func main() {
	const n = 400 // cities on a ring-and-spokes country
	rng := rand.New(rand.NewSource(17))

	// Before: a ring of slow highways plus random regional roads.
	var before []convergence.WeightedEdge
	for i := 0; i < n; i++ {
		before = append(before, convergence.WeightedEdge{
			U: i, V: (i + 1) % n, Weight: 5 + rng.Int31n(6),
		})
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		before = append(before, convergence.WeightedEdge{U: u, V: v, Weight: 10 + rng.Int31n(10)})
	}
	g1, err := convergence.NewWeighted(n, before)
	if err != nil {
		log.Fatal(err)
	}

	// After: the same network with 6 new motorways and 30 upgraded
	// segments (weights only shrink, so distances only drop).
	after := append([]convergence.WeightedEdge{}, before...)
	for i := 0; i < 30; i++ {
		j := rng.Intn(len(after))
		if after[j].Weight > 2 {
			after[j].Weight = 1 + after[j].Weight/3
		}
	}
	for i := 0; i < 6; i++ {
		u := rng.Intn(n)
		v := (u + n/3 + rng.Intn(n/3)) % n
		after = append(after, convergence.WeightedEdge{U: u, V: v, Weight: 2})
	}
	g2, err := convergence.NewWeighted(n, after)
	if err != nil {
		log.Fatal(err)
	}

	pair := convergence.WeightedSnapshotPair{G1: g1, G2: g2}
	fmt.Printf("road network: %d cities, %d -> %d segments\n\n", n, g1.NumEdges(), g2.NumEdges())

	res, err := convergence.WeightedTopK(pair, convergence.WeightedOptions{
		Selector: "MMSD", M: 30, L: 5, K: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: %s\n", res.Budget)
	fmt.Println("city pairs the new motorways brought closest together:")
	for i, p := range res.Pairs {
		fmt.Printf("%d. city %3d ~ city %3d: travel time %3d -> %3d (saved %d)\n",
			i+1, p.U, p.V, p.D1, p.D2, p.Delta)
	}

	// Validate against the exact weighted baseline.
	gt, err := convergence.WeightedGroundTruth(pair, 0)
	if err != nil {
		log.Fatal(err)
	}
	truth := gt.PairsAtLeast(gt.MaxDelta - 2)
	covered := 0
	candSet := convergence.NodeSet(res.Candidates)
	for _, p := range truth {
		if candSet[p.U] || candSet[p.V] {
			covered++
		}
	}
	fmt.Printf("\nexact: Δmax=%d, %d pairs within 2 of it; budgeted run covered %d (%.0f%%)\n",
		gt.MaxDelta, len(truth), covered, 100*float64(covered)/float64(max(len(truth), 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
