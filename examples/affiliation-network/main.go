// Affiliation network: the bipartite setting of the paper's related work —
// researchers join projects over time (an author–paper / user–group
// affiliation stream). Projecting co-membership onto the researcher side
// yields an evolving collaboration graph the converging-pairs pipeline
// consumes directly, and the weighted projection makes "how often do they
// collaborate" the distance.
//
//	go run ./examples/affiliation-network
package main

import (
	"fmt"
	"log"
	"math/rand"

	convergence "repro"
	"repro/internal/bipartite"
)

func main() {
	// Simulate an affiliation stream: 60 projects staffed over time from a
	// pool of researchers, with project teams drawn from two departments
	// that slowly start collaborating.
	rng := rand.New(rand.NewSource(99))
	const researchers, projects = 300, 90
	var events []bipartite.Membership
	seen := map[[2]int]bool{}
	tstamp := int64(0)
	join := func(r, p int) {
		if seen[[2]int{r, p}] {
			return
		}
		seen[[2]int{r, p}] = true
		events = append(events, bipartite.Membership{Left: r, Right: p, Time: tstamp})
		tstamp++
	}
	for p := 0; p < projects; p++ {
		// Early projects stay within one department (researcher ID halves);
		// the last quarter of projects mix departments.
		var pool func() int
		switch {
		case p >= projects*3/4:
			pool = func() int { return rng.Intn(researchers) }
		case p%2 == 0:
			pool = func() int { return rng.Intn(researchers / 2) }
		default:
			pool = func() int { return researchers/2 + rng.Intn(researchers/2) }
		}
		team := 3 + rng.Intn(4)
		for i := 0; i < team; i++ {
			join(pool(), p)
		}
	}

	stream, err := bipartite.NewStream(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("affiliation stream: %d researchers, %d projects, %d memberships\n",
		stream.NumLeft(), stream.NumRight(), stream.NumEvents())

	// Project to the researcher side (cap giant projects at 10 members).
	ev, err := stream.Project(10)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := ev.Pair(0.75, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected collaboration graph: %d -> %d edges\n\n",
		pair.G1.NumEdges(), pair.G2.NumEdges())

	// The cross-department projects arrive late, so the top converging
	// pairs should straddle the two departments.
	res, err := convergence.TopK(pair, convergence.Options{
		Selector: convergence.MustSelector("MMSD"),
		M:        25, L: 5, K: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: %s\n", res.Budget)
	cross := 0
	for i, p := range res.Pairs {
		deptU, deptV := int(p.U)/(researchers/2), int(p.V)/(researchers/2)
		tag := "same department"
		if deptU != deptV {
			tag = "CROSS-DEPARTMENT"
			cross++
		}
		fmt.Printf("%d. researchers %3d ~ %3d: distance %d -> %d  [%s]\n",
			i+1, p.U, p.V, p.D1, p.D2, tag)
	}
	fmt.Printf("\n%d of %d top converging pairs straddle the departments —\n"+
		"the late cross-department projects are exactly what converged.\n",
		cross, len(res.Pairs))
}
