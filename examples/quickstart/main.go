// Quickstart: find the pairs of nodes that converged the most between two
// snapshots of a small evolving graph, on a budget of shortest-path
// computations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	convergence "repro"
)

func main() {
	// An evolving graph: a ring road of 12 towns built one segment at a
	// time, then two late "highway" chords that suddenly bring opposite
	// towns close together.
	var stream []convergence.TimedEdge
	add := func(u, v int) {
		stream = append(stream, convergence.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 0; i < 11; i++ {
		add(i, i+1)
	}
	add(11, 0) // close the ring
	add(0, 6)  // highway 1
	add(3, 9)  // highway 2

	ev, err := convergence.NewEvolving(stream)
	if err != nil {
		log.Fatal(err)
	}
	// G_t1 is the ring without highways; G_t2 the full graph.
	pair := convergence.SnapshotPair{
		G1: ev.SnapshotPrefix(12),
		G2: ev.SnapshotFraction(1.0),
	}

	// Budget: m = 4 candidate endpoints, i.e. at most 8 BFS computations —
	// versus 12 for the exact all-pairs baseline on this toy graph, and
	// versus tens of thousands on a real one.
	res, err := convergence.TopK(pair, convergence.Options{
		Selector: convergence.MustSelector("MMSD"),
		M:        4,
		L:        2,
		K:        5,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selector: %s, budget spent: %s\n\n", res.SelectorName, res.Budget)
	fmt.Println("top converging pairs (towns the highways brought together):")
	for i, p := range res.Pairs {
		fmt.Printf("%d. towns %2d and %2d: distance %d -> %d (Δ=%d)\n",
			i+1, p.U, p.V, p.D1, p.D2, p.Delta)
	}

	// Why did the top pair converge? Trace the new edges behind it.
	if len(res.Pairs) > 0 {
		exp, err := convergence.Explain(pair, res.Pairs[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexplanation: %s\n", exp)
	}

	// Compare with the exact, unbudgeted answer.
	exact, err := convergence.Exact(pair, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage of the exact top-%d: %.0f%%\n",
		len(exact), 100*res.Coverage(exact))
}
