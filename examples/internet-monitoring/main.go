// Internet monitoring: track which autonomous-system pairs converge as the
// AS-level topology densifies — sudden distance collapses between distant
// networks can signal new peering agreements or rerouting. This example
// slides a window over the edge stream and reports the top converging AS
// pairs of each window, all under budget.
//
//	go run ./examples/internet-monitoring
package main

import (
	"fmt"
	"log"

	convergence "repro"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	ds, err := dataset.Generate("InternetLinks", datagen.Config{Seed: 11, Scale: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	full := ds.Ev.SnapshotFraction(1.0)
	fmt.Printf("AS topology: %d systems, %d links at the final snapshot\n\n",
		full.NumNodes(), full.NumEdges())

	// Monitor three consecutive windows of the link stream.
	windows := [][2]float64{{0.7, 0.8}, {0.8, 0.9}, {0.9, 1.0}}
	for _, w := range windows {
		pair, err := ds.Ev.Pair(w[0], w[1])
		if err != nil {
			log.Fatal(err)
		}
		res, err := convergence.TopK(pair, convergence.Options{
			Selector: convergence.MustSelector("MASD"),
			M:        40,
			K:        5,
			Seed:     int64(w[0] * 100),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %.0f%%-%.0f%% (+%d links, %s):\n",
			100*w[0], 100*w[1], pair.G2.NumEdges()-pair.G1.NumEdges(), res.Budget)
		if len(res.Pairs) == 0 {
			fmt.Println("  no converging AS pairs detected")
		}
		for _, p := range res.Pairs {
			fmt.Printf("  AS%-5d ~ AS%-5d  path length %d -> %d (Δ=%d)\n",
				p.U, p.V, p.D1, p.D2, p.Delta)
		}
		fmt.Println()
	}

	// For the last window, sanity-check the alert quality against the exact
	// ground truth.
	pair, err := ds.Ev.Pair(0.9, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	gt, err := convergence.ComputeGroundTruth(pair, 0)
	if err != nil {
		log.Fatal(err)
	}
	if gt.MaxDelta == 0 {
		fmt.Println("no distance changes in the final window")
		return
	}
	res, err := convergence.TopK(pair, convergence.Options{
		Selector: convergence.MustSelector("MMSD"), M: 60, K: 5, Seed: 90,
	})
	if err != nil {
		log.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	fmt.Printf("final window: Δmax=%d, %d pairs with Δ>=%d, budgeted coverage %.0f%%\n",
		gt.MaxDelta, len(truth), delta, 100*res.Coverage(truth))

	// Attribute the convergence back to the links that caused it: which new
	// peering links do the converged pairs actually route over?
	fmt.Println("\ncritical new links (by converging pairs routed):")
	for _, imp := range convergence.CriticalNewEdges(pair, truth, 3) {
		fmt.Printf("  AS%-5d -- AS%-5d carries %d of the %d pairs\n",
			imp.Edge.U, imp.Edge.V, imp.Pairs, len(truth))
	}
}
