// Streaming watch: a long-running monitor over a growing network, built
// from two pieces of the library — the windowed Watch API that reports
// converging pairs per window, and the incremental LandmarkTracker that
// keeps landmark distances fresh across the whole stream for the cost of
// one BFS per landmark (instead of 2l per window).
//
//	go run ./examples/streaming-watch
//	go run ./examples/streaming-watch -trace watch.json   # phase timeline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	convergence "repro"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/landmark"
	"repro/internal/obs"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the watch's windows")
	ocli := obs.BindCLIFlags(flag.CommandLine)
	flag.Parse()
	if err := ocli.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := ocli.Finish(); err != nil {
			log.Fatal(err)
		}
	}()

	ds, err := dataset.Generate("Actors", datagen.Config{Seed: 33, Scale: 0.12})
	if err != nil {
		log.Fatal(err)
	}
	ev := ds.Ev
	full := ev.SnapshotFraction(1.0)
	fmt.Printf("co-appearance stream: %d actors, %d edges\n\n", full.NumNodes(), full.NumEdges())

	// --- Windowed alerts: who converged in each of the last 4 windows? ---
	const windows = 4
	var tr *convergence.Trace
	if *traceOut != "" {
		tr = convergence.NewTrace("streaming-watch")
	}
	reports, err := convergence.Watch(ev, convergence.EvenWindows(0.6, windows),
		convergence.MonitorConfig{
			Selector: convergence.MustSelector("MMSD"),
			M:        30, L: 5, MinDelta: 2, Seed: 9,
			Trace: tr,
		})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Printf("window %.0f%%-%.0f%%: +%d edges, %d converging pairs (budget %s)\n",
			100*rep.StartFrac, 100*rep.EndFrac, rep.NewEdges, len(rep.Pairs), rep.Budget)
		for i, p := range rep.Pairs {
			if i == 2 {
				fmt.Printf("    ...and %d more\n", len(rep.Pairs)-2)
				break
			}
			fmt.Printf("    actors %4d ~ %4d: %d -> %d\n", p.U, p.V, p.D1, p.D2)
		}
	}

	// --- Incremental landmark maintenance across the same stream. ---
	startPrefix := int(0.6 * float64(ev.NumEdges()))
	g1 := ev.SnapshotPrefix(startPrefix)
	set, err := landmark.Select(landmark.MaxMin, g1, 8, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := convergence.NewLandmarkTracker(ev, set.Nodes, startPrefix)
	if err != nil {
		log.Fatal(err)
	}
	if err := tracker.AdvanceToFraction(1.0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming SumDiff hot list (top 8 by landmark-distance drop since 60%%):\n")
	for i, u := range tracker.Top(8) {
		fmt.Printf("  %d. actor %d\n", i+1, u)
	}
	fmt.Printf("incremental maintenance saved ~%d full BFS runs over %d windows\n",
		tracker.SSSPCostSaved(windows), windows)

	if tr != nil {
		if err := tr.WriteChromeFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwindow-by-window phase timeline:\n")
		if err := tr.WriteTree(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}
