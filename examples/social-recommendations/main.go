// Social recommendations: on a Facebook-like friendship graph, users whose
// network distance collapsed between two snapshots likely developed shared
// interests or circles — prime friend-recommendation targets (the paper's
// motivating application). This example finds converging user pairs on a
// small budget and emits recommendations for the pairs that are not yet
// friends.
//
//	go run ./examples/social-recommendations
package main

import (
	"fmt"
	"log"

	convergence "repro"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	// A synthetic friendship graph grown with triadic closure (stand-in for
	// the paper's Facebook dataset; see DESIGN.md §4).
	ds, err := dataset.Generate("Facebook", datagen.Config{Seed: 2026, Scale: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	pair := ds.TestPair()
	n := pair.G1.NumNodes()
	fmt.Printf("friendship graph: %d users, %d -> %d friendships\n",
		n, pair.G1.NumEdges(), pair.G2.NumEdges())

	// Budget: ~5% of users. The MMSD hybrid ranks users that came closer to many
	// parts of the network.
	m := n / 20
	res, err := convergence.TopK(pair, convergence.Options{
		Selector: convergence.MustSelector("MMSD"),
		M:        m,
		MinDelta: 2, // only pairs that got at least 2 hops closer
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: m=%d endpoints, %s\n\n", m, res.Budget)

	recommended := 0
	fmt.Println("friend recommendations (converging, not yet friends):")
	for _, p := range res.Pairs {
		if pair.G2.HasEdge(int(p.U), int(p.V)) {
			continue // already friends
		}
		recommended++
		if recommended <= 10 {
			fmt.Printf("  suggest %4d ↔ %4d  (distance %d -> %d)\n", p.U, p.V, p.D1, p.D2)
		}
	}
	fmt.Printf("...%d recommendations from %d converging pairs\n", recommended, len(res.Pairs))

	// How good was the budget? Compare against the exact top pairs.
	gt, err := convergence.ComputeGroundTruth(pair, 0)
	if err != nil {
		log.Fatal(err)
	}
	truth := gt.PairsAtLeast(2)
	fmt.Printf("\nexact pairs with Δ>=2: %d; budgeted run covered %.0f%% of them\n",
		len(truth), 100*res.Coverage(truth))
}
