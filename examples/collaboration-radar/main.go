// Collaboration radar: on a DBLP-like co-authorship graph, researchers whose
// collaboration distance shrinks are candidates for future joint work (or
// are silently joining the same community — the paper's protein-network
// analogy works the same way). This example trains the paper's
// classification-based selector on an earlier period and uses it to watch
// the recent period, comparing against the best single-feature algorithm.
//
//	go run ./examples/collaboration-radar
package main

import (
	"fmt"
	"log"

	convergence "repro"
	"repro/internal/candidates"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	ds, err := dataset.Generate("DBLP", datagen.Config{Seed: 5, Scale: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	trainPair := ds.TrainPair() // 60% -> 70% of the publication stream
	testPair := ds.TestPair()   // 80% -> 100%
	fmt.Printf("co-authorship graph: %d authors, test window %d -> %d collaborations\n\n",
		testPair.G1.NumNodes(), testPair.G1.NumEdges(), testPair.G2.NumEdges())

	// --- Train the L-Classifier on the earlier period. ---
	// Positive class: the greedy vertex cover of the training period's
	// top converging pairs (the paper's Section 5.3 recipe).
	trainGT, err := convergence.ComputeGroundTruth(trainPair, 0)
	if err != nil {
		log.Fatal(err)
	}
	delta := trainGT.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	positives := map[int32]bool{}
	for _, u := range convergence.GreedyCover(trainGT.PairsAtLeast(delta)) {
		positives[u] = true
	}
	fmt.Printf("training period: Δmax=%d, %d cover nodes as positives\n",
		trainGT.MaxDelta, len(positives))

	model, err := convergence.TrainClassifier(
		[]convergence.TrainSample{{Pair: trainPair, Positives: positives}},
		candidates.TrainOptions{L: 10, Seed: 55},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("learned feature weights (|weight| descending):")
	for i, fw := range model.FeatureImportance() {
		if i == 4 {
			break
		}
		fmt.Printf("   %-12s %+.2f\n", fw.Name, fw.Weight)
	}
	fmt.Println()

	// --- Watch the recent period with both approaches. ---
	testGT, err := convergence.ComputeGroundTruth(testPair, 0)
	if err != nil {
		log.Fatal(err)
	}
	testDelta := testGT.MaxDelta - 1
	if testDelta < 1 {
		testDelta = 1
	}
	truth := testGT.PairsAtLeast(testDelta)
	fmt.Printf("test period: Δmax=%d, %d pairs with Δ>=%d\n\n",
		testGT.MaxDelta, len(truth), testDelta)

	const m = 60
	for _, sel := range []convergence.Selector{
		convergence.MustSelector("MMSD"),
		convergence.NewClassifierSelector("L-Classifier", model),
	} {
		res, err := convergence.TopK(testPair, convergence.Options{
			Selector: sel, M: m, MinDelta: testDelta, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s coverage %.0f%%  (%s)\n",
			sel.Name(), 100*res.Coverage(truth), res.Budget)
		for i, p := range res.Pairs {
			if i == 3 {
				break
			}
			fmt.Printf("   radar: authors %4d and %4d moved %d -> %d apart\n",
				p.U, p.V, p.D1, p.D2)
		}
	}
}
