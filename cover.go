package convergence

import (
	"repro/internal/cover"
	"repro/internal/topk"
)

// coverGreedy adapts internal/cover.Greedy for the public facade.
func coverGreedy(pairs []Pair) []int32 { return cover.Greedy(pairs) }

// MaxCoverage runs the greedy budgeted max-coverage algorithm: at most
// budget nodes chosen to cover as many pairs as possible, with the covered
// count returned alongside (the paper's Problem 2 reference solution).
func MaxCoverage(pairs []Pair, budget int) (nodes []int32, covered int) {
	return cover.MaxCoverage(pairs, budget)
}

// IsCover reports whether nodes cover every pair.
func IsCover(pairs []Pair, nodes []int32) bool { return cover.IsCover(pairs, nodes) }

// NodeSet converts candidate node IDs into the set form used by coverage
// helpers.
func NodeSet(nodes []int) map[int32]bool { return topk.NodeSet(nodes) }
