package convergence

import (
	"testing"
)

// pathPair builds a path 0..n-1 in G1 and adds a chord {0, n-1} in G2.
func pathPair(n int) SnapshotPair {
	var stream []TimedEdge
	for i := 0; i < n-1; i++ {
		stream = append(stream, TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	stream = append(stream, TimedEdge{U: 0, V: n - 1, Time: int64(n)})
	ev, err := NewEvolving(stream)
	if err != nil {
		panic(err)
	}
	return SnapshotPair{G1: ev.SnapshotPrefix(n - 1), G2: ev.SnapshotFraction(1.0)}
}

func TestPublicTopK(t *testing.T) {
	pair := pathPair(10)
	res, err := TopK(pair, Options{
		Selector: MustSelector("MaxAvg"),
		M:        4,
		K:        3,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget.Total() > 8 {
		t.Fatalf("budget total %d > 2m", res.Budget.Total())
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs found; MaxAvg picks path ends which converge")
	}
	top := res.Pairs[0]
	if top.U != 0 || top.V != 9 || top.Delta != 8 {
		t.Fatalf("top pair = %v, want (0,9) Δ=8", top)
	}
}

func TestPublicExactAndGroundTruth(t *testing.T) {
	pair := pathPair(10)
	pairs, err := Exact(pair, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Delta != 8 {
		t.Fatalf("exact top = %v", pairs)
	}
	gt, err := ComputeGroundTruth(pair, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta != 8 {
		t.Fatalf("MaxDelta = %d", gt.MaxDelta)
	}
	if gt.Diameter1 != 9 || gt.Diameter2 != 5 {
		t.Fatalf("diameters = %d, %d", gt.Diameter1, gt.Diameter2)
	}
}

func TestPublicSelectors(t *testing.T) {
	names := Selectors()
	if len(names) < 12 {
		t.Fatalf("only %d selectors", len(names))
	}
	for _, name := range names {
		sel, err := NewSelector(name)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Name() != name {
			t.Fatalf("%q reports %q", name, sel.Name())
		}
		if SelectorDescription(name) == "" {
			t.Fatalf("no description for %q", name)
		}
	}
	if _, err := NewSelector("bogus"); err == nil {
		t.Fatal("unknown selector should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSelector should panic on unknown name")
		}
	}()
	MustSelector("bogus")
}

func TestPublicCoverHelpers(t *testing.T) {
	pairs := []Pair{{U: 0, V: 5}, {U: 0, V: 7}, {U: 2, V: 5}}
	cov := GreedyCover(pairs)
	if !IsCover(pairs, cov) {
		t.Fatal("greedy cover does not cover")
	}
	nodes, covered := MaxCoverage(pairs, 1)
	if len(nodes) != 1 || covered != 2 {
		t.Fatalf("MaxCoverage(1) = %v, %d", nodes, covered)
	}
	if c := Coverage(pairs, []int{0}); c < 0.6 || c > 0.7 {
		t.Fatalf("coverage = %v, want 2/3", c)
	}
	set := NodeSet([]int{3, 4})
	if !set[3] || set[9] {
		t.Fatal("NodeSet wrong")
	}
	pg := NewPairsGraph(pairs)
	if pg.NumPairs() != 3 || pg.NumEndpoints() != 4 {
		t.Fatalf("pairs graph %d/%d", pg.NumPairs(), pg.NumEndpoints())
	}
}

func TestPublicClassifierFlow(t *testing.T) {
	// A richer pair so training has positives: two paths that get chords.
	var stream []TimedEdge
	tstamp := int64(0)
	add := func(u, v int) {
		stream = append(stream, TimedEdge{U: u, V: v, Time: tstamp})
		tstamp++
	}
	for i := 0; i < 19; i++ {
		add(i, i+1)
	}
	for i := 20; i < 39; i++ {
		add(i, i+1)
	}
	add(0, 19)
	add(20, 39)
	ev, err := NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	pair := SnapshotPair{G1: ev.SnapshotPrefix(38), G2: ev.SnapshotFraction(1.0)}
	gt, err := ComputeGroundTruth(pair, 2)
	if err != nil {
		t.Fatal(err)
	}
	positives := map[int32]bool{}
	for _, u := range GreedyCover(gt.PairsAtLeast(gt.MaxDelta - 1)) {
		positives[u] = true
	}
	model, err := TrainClassifier(
		[]TrainSample{{Pair: pair, Positives: positives}}, trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	sel := NewClassifierSelector("L-Classifier", model)
	res, err := TopK(pair, Options{Selector: sel, M: 15, L: 3, K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget.Total() > 30 {
		t.Fatalf("budget %d > 2m", res.Budget.Total())
	}
}
