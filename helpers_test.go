package convergence

import "repro/internal/candidates"

// trainOpts builds classifier training options with l landmarks; shared by
// root-package tests.
func trainOpts(l int) candidates.TrainOptions {
	return candidates.TrainOptions{L: l, Seed: 7, Workers: 2}
}
